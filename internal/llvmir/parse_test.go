package llvmir

import (
	"strings"
	"testing"

	"repro/internal/paperprogs"
)

func mustParse(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m
}

func TestParseArithmSeqSum(t *testing.T) {
	m := mustParse(t, paperprogs.ArithmSeqSum)
	f := m.Func("arithm_seq_sum")
	if f == nil || !f.Defined() {
		t.Fatalf("function missing")
	}
	if len(f.Blocks) != 5 {
		t.Errorf("blocks = %d, want 5", len(f.Blocks))
	}
	if len(f.Params) != 3 || f.Params[0].Name != "a0" {
		t.Errorf("params = %+v", f.Params)
	}
	cond := f.BlockByName("for.cond")
	if cond == nil {
		t.Fatalf("no for.cond block")
	}
	if cond.Instrs[0].Op != OpPhi || cond.Instrs[1].Op != OpPhi || cond.Instrs[2].Op != OpPhi {
		t.Errorf("for.cond does not start with three phis")
	}
	if cond.Term().Op != OpCondBr {
		t.Errorf("for.cond terminator = %v", cond.Term())
	}
	if cond.Instrs[3].Op != OpICmp || cond.Instrs[3].Pred != CmpULT {
		t.Errorf("icmp = %v", cond.Instrs[3])
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, src := range []string{
		paperprogs.ArithmSeqSum,
		paperprogs.CallExample,
		paperprogs.MemSwap,
		paperprogs.NSWExample,
		paperprogs.AllocaExample,
	} {
		m := mustParse(t, src)
		m2 := mustParse(t, m.String())
		if m.String() != m2.String() {
			t.Errorf("round trip mismatch:\n%s\nvs\n%s", m.String(), m2.String())
		}
	}
}

func TestParseWAWConstExprs(t *testing.T) {
	m := mustParse(t, paperprogs.WAWStores)
	f := m.Func("waw_foo")
	if f == nil {
		t.Fatalf("waw_foo missing")
	}
	entry := f.Entry()
	if len(entry.Instrs) != 4 {
		t.Fatalf("entry has %d instrs, want 4", len(entry.Instrs))
	}
	wantOffs := []uint64{2, 3, 0}
	wantVals := []uint64{0, 2, 1}
	for i := 0; i < 3; i++ {
		st := entry.Instrs[i]
		if st.Op != OpStore {
			t.Fatalf("instr %d is %v, want store", i, st)
		}
		ptr := st.Args[1]
		if ptr.Kind != VGlobal || ptr.Name != "b" || ptr.Off != wantOffs[i] {
			t.Errorf("store %d pointer = %+v, want @b+%d", i, ptr, wantOffs[i])
		}
		if st.Args[0].Int != wantVals[i] {
			t.Errorf("store %d value = %d, want %d", i, st.Args[0].Int, wantVals[i])
		}
		if pt, ok := ptr.Ty.(PtrType); !ok || !TypeEqual(pt.Elem, I16) {
			t.Errorf("store %d pointer type = %v, want i16*", i, ptr.Ty)
		}
	}
}

func TestParseLoadNarrow(t *testing.T) {
	m := mustParse(t, paperprogs.LoadNarrow)
	if g := m.Global("a"); g == nil || SizeOf(g.Type) != 6 {
		t.Fatalf("global @a: %+v", g)
	}
	f := m.Func("narrow_foo")
	ld := f.Entry().Instrs[0]
	if ld.Op != OpLoad || SizeOf(ld.Ty) != 6 {
		t.Errorf("load = %v (size %d)", ld, SizeOf(ld.Ty))
	}
	shr := f.Entry().Instrs[1]
	if shr.Op != OpLShr || shr.Args[1].Int != 32 {
		t.Errorf("lshr = %v", shr)
	}
}

func TestParseTypes(t *testing.T) {
	src := `
@s = external global { i32, [2 x i16], i8 }
define i64* @f(i64* %p) {
entry:
  ret i64* %p
}
`
	m := mustParse(t, src)
	g := m.Global("s")
	st, ok := g.Type.(StructType)
	if !ok || len(st.Fields) != 3 {
		t.Fatalf("struct type = %v", g.Type)
	}
	if SizeOf(st) != 4+4+1 {
		t.Errorf("SizeOf(struct) = %d, want 9 (packed)", SizeOf(st))
	}
	if FieldOffset(st, 2) != 8 {
		t.Errorf("FieldOffset(2) = %d", FieldOffset(st, 2))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`define i32 @f() {`,                      // unterminated
		`define i32 @f() { entry: ret i32 }`,     // missing operand
		`define i32 @f() { entry: frob i32 1 }`,  // unknown opcode
		`define i128 @f() { entry: ret i128 0 }`, // unsupported width
		`@g = global`,                            // missing type
		`define i32 @f(i32 %x) { entry: %y = icmp zz i32 %x, 1 ret i32 0 }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"undefined reg", `
define i32 @f() {
entry:
  %r = add i32 %ghost, 1
  ret i32 %r
}`, "undefined register"},
		{"double def", `
define i32 @f(i32 %x) {
entry:
  %r = add i32 %x, 1
  %r = add i32 %x, 2
  ret i32 %r
}`, "defined twice"},
		{"bad branch", `
define void @f() {
entry:
  br label %ghost
}`, "unknown block"},
		{"phi wrong preds", `
define i32 @f(i32 %x) {
entry:
  br label %next
next:
  %p = phi i32 [ 1, %ghost ]
  ret i32 %p
}`, "unknown block"},
		{"non-dominating use", `
define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %v = add i32 %x, 1
  br label %b
b:
  %r = add i32 %v, 1
  ret i32 %r
}`, "dominate"},
		{"ret type mismatch", `
define i32 @f() {
entry:
  ret i64 0
}`, "ret type"},
		{"load type mismatch", `
define i32 @f(i64* %p) {
entry:
  %v = load i32, i64* %p
  ret i32 %v
}`, "does not match"},
		{"call arity", `
declare i32 @g(i32)
define i32 @f() {
entry:
  %r = call i32 @g(i32 1, i32 2)
  ret i32 %r
}`, "args"},
	}
	for _, tc := range cases {
		m, err := Parse(tc.src)
		if err != nil {
			// Some malformed programs fail in the parser, which is fine as
			// long as the message points at the problem.
			continue
		}
		err = Verify(m)
		if err == nil {
			t.Errorf("%s: verified", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestVerifyAcceptsPaperPrograms(t *testing.T) {
	for _, src := range []string{
		paperprogs.ArithmSeqSum, paperprogs.WAWStores, paperprogs.LoadNarrow,
		paperprogs.CallExample, paperprogs.MemSwap, paperprogs.NSWExample,
		paperprogs.AllocaExample,
	} {
		mustParse(t, src)
	}
}

func TestNumInstrs(t *testing.T) {
	m := mustParse(t, paperprogs.ArithmSeqSum)
	if got := m.Func("arithm_seq_sum").NumInstrs(); got != 12 {
		t.Errorf("NumInstrs = %d, want 12", got)
	}
}
