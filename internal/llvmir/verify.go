package llvmir

import (
	"fmt"

	"repro/internal/cfg"
)

// Verify checks module well-formedness: SSA dominance, phi/CFG agreement,
// type correctness, and terminator placement. It returns the first error
// found.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if !f.Defined() {
			continue
		}
		if err := VerifyFunc(m, f); err != nil {
			return fmt.Errorf("llvmir: function @%s: %w", f.Name, err)
		}
	}
	return nil
}

// VerifyFunc checks a single function definition.
func VerifyFunc(m *Module, f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	blocks := make(map[string]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		if _, dup := blocks[b.Name]; dup {
			return fmt.Errorf("duplicate block %%%s", b.Name)
		}
		blocks[b.Name] = b
	}

	// Register definitions: params and instruction results, unique.
	defBlock := make(map[string]string) // reg -> defining block
	defIdx := make(map[string]int)      // reg -> instruction index
	regTy := make(map[string]Type)
	for _, p := range f.Params {
		if p.Name == "" {
			return fmt.Errorf("unnamed parameter")
		}
		if _, dup := regTy[p.Name]; dup {
			return fmt.Errorf("duplicate parameter %%%s", p.Name)
		}
		regTy[p.Name] = p.Ty
		defBlock[p.Name] = "" // params dominate everything
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("block %%%s: terminator not last", b.Name)
			}
			if in.Op == OpPhi && (i > 0 && b.Instrs[i-1].Op != OpPhi) {
				return fmt.Errorf("block %%%s: phi after non-phi", b.Name)
			}
			if in.Name == "" {
				continue
			}
			if _, dup := regTy[in.Name]; dup {
				return fmt.Errorf("register %%%s defined twice", in.Name)
			}
			ty, err := resultType(in)
			if err != nil {
				return fmt.Errorf("block %%%s: %%%s: %w", b.Name, in.Name, err)
			}
			regTy[in.Name] = ty
			defBlock[in.Name] = b.Name
			defIdx[in.Name] = i
		}
		if len(b.Instrs) == 0 || !b.Term().IsTerminator() {
			return fmt.Errorf("block %%%s: missing terminator", b.Name)
		}
	}

	g := FuncGraph{f}
	preds := cfg.Preds(g)
	idom := cfg.Dominators(g)
	if len(preds[f.Entry().Name]) != 0 {
		return fmt.Errorf("entry block has predecessors")
	}

	checkUse := func(b *Block, i int, v Value) error {
		switch v.Kind {
		case VReg:
			ty, ok := regTy[v.Name]
			if !ok {
				return fmt.Errorf("use of undefined register %%%s", v.Name)
			}
			if !TypeEqual(ty, v.Ty) {
				return fmt.Errorf("register %%%s has type %s, used as %s", v.Name, ty, v.Ty)
			}
			db := defBlock[v.Name]
			if db == "" {
				return nil // parameter
			}
			if db == b.Name {
				if defIdx[v.Name] >= i && b.Instrs[i].Op != OpPhi {
					return fmt.Errorf("register %%%s used before definition", v.Name)
				}
				return nil
			}
			if !cfg.Dominates(idom, db, b.Name) {
				return fmt.Errorf("definition of %%%s does not dominate use in %%%s", v.Name, b.Name)
			}
		case VGlobal:
			if m.Global(v.Name) == nil {
				return fmt.Errorf("use of undefined global @%s", v.Name)
			}
		}
		return nil
	}

	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			switch in.Op {
			case OpPhi:
				// Phi incoming edges must exactly match CFG predecessors.
				seen := make(map[string]bool, len(in.Incoming))
				for _, inc := range in.Incoming {
					pb, ok := blocks[inc.Pred]
					if !ok {
						return fmt.Errorf("block %%%s: phi references unknown block %%%s", b.Name, inc.Pred)
					}
					if seen[inc.Pred] {
						return fmt.Errorf("block %%%s: phi lists %%%s twice", b.Name, inc.Pred)
					}
					seen[inc.Pred] = true
					if !TypeEqual(in.Ty, inc.Val.Ty) {
						return fmt.Errorf("block %%%s: phi incoming type mismatch", b.Name)
					}
					// Incoming register must dominate the predecessor end.
					if inc.Val.Kind == VReg {
						ty, ok := regTy[inc.Val.Name]
						if !ok {
							return fmt.Errorf("block %%%s: phi uses undefined %%%s", b.Name, inc.Val.Name)
						}
						if !TypeEqual(ty, inc.Val.Ty) {
							return fmt.Errorf("block %%%s: phi operand type mismatch for %%%s", b.Name, inc.Val.Name)
						}
						db := defBlock[inc.Val.Name]
						if db != "" && !cfg.Dominates(idom, db, pb.Name) {
							return fmt.Errorf("block %%%s: phi operand %%%s does not dominate predecessor %%%s",
								b.Name, inc.Val.Name, pb.Name)
						}
					}
					if inc.Val.Kind == VGlobal && m.Global(inc.Val.Name) == nil {
						return fmt.Errorf("phi uses undefined global @%s", inc.Val.Name)
					}
				}
				for _, pr := range preds[b.Name] {
					if !seen[pr] {
						return fmt.Errorf("block %%%s: phi missing incoming for predecessor %%%s", b.Name, pr)
					}
				}
				if len(in.Incoming) != len(preds[b.Name]) {
					return fmt.Errorf("block %%%s: phi has %d incoming, block has %d predecessors",
						b.Name, len(in.Incoming), len(preds[b.Name]))
				}
			default:
				for _, v := range in.Args {
					if err := checkUse(b, i, v); err != nil {
						return fmt.Errorf("block %%%s: %s: %w", b.Name, in, err)
					}
				}
			}
			if err := checkTypes(m, f, in); err != nil {
				return fmt.Errorf("block %%%s: %s: %w", b.Name, in, err)
			}
			for _, l := range in.Labels {
				if _, ok := blocks[l]; !ok {
					return fmt.Errorf("block %%%s: branch to unknown block %%%s", b.Name, l)
				}
			}
		}
	}
	return nil
}

// resultType computes the type of an instruction's result register.
func resultType(in *Instr) (Type, error) {
	switch in.Op {
	case OpICmp:
		return I1, nil
	case OpAlloca:
		return PtrType{Elem: in.Ty}, nil
	case OpGEP, OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpSDiv, OpSRem, OpAnd, OpOr, OpXor,
		OpShl, OpLShr, OpAShr, OpTrunc, OpZExt, OpSExt, OpBitcast,
		OpIntToPtr, OpPtrToInt, OpCall, OpPhi, OpSelect, OpLoad:
		return in.Ty, nil
	}
	return nil, fmt.Errorf("instruction produces no result")
}

func checkTypes(m *Module, f *Function, in *Instr) error {
	intOnly := func(t Type) error {
		if _, ok := t.(IntType); !ok {
			return fmt.Errorf("expected integer type, got %s", t)
		}
		return nil
	}
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		return intOnly(in.Ty)
	case OpICmp:
		switch in.Ty.(type) {
		case IntType, PtrType:
			return nil
		}
		return fmt.Errorf("icmp over non-integer, non-pointer type %s", in.Ty)
	case OpTrunc:
		s, okS := in.SrcTy.(IntType)
		d, okD := in.Ty.(IntType)
		if !okS || !okD || d.Bits >= s.Bits {
			return fmt.Errorf("trunc must narrow integer types")
		}
	case OpZExt, OpSExt:
		s, okS := in.SrcTy.(IntType)
		d, okD := in.Ty.(IntType)
		if !okS || !okD || d.Bits <= s.Bits {
			return fmt.Errorf("%s must widen integer types", opNames[in.Op])
		}
	case OpBitcast:
		_, okS := in.SrcTy.(PtrType)
		_, okD := in.Ty.(PtrType)
		if !okS || !okD {
			return fmt.Errorf("bitcast supports only pointer-to-pointer")
		}
	case OpIntToPtr:
		if err := intOnly(in.SrcTy); err != nil {
			return err
		}
		if _, ok := in.Ty.(PtrType); !ok {
			return fmt.Errorf("inttoptr target must be a pointer")
		}
	case OpPtrToInt:
		if _, ok := in.SrcTy.(PtrType); !ok {
			return fmt.Errorf("ptrtoint source must be a pointer")
		}
		return intOnly(in.Ty)
	case OpLoad:
		pt, ok := in.Args[0].Ty.(PtrType)
		if !ok || !TypeEqual(pt.Elem, in.Ty) {
			return fmt.Errorf("load type %s does not match pointer %s", in.Ty, in.Args[0].Ty)
		}
	case OpStore:
		pt, ok := in.Args[1].Ty.(PtrType)
		if !ok || !TypeEqual(pt.Elem, in.Ty) {
			return fmt.Errorf("store type %s does not match pointer %s", in.Ty, in.Args[1].Ty)
		}
	case OpCondBr:
		if it, ok := in.Args[0].Ty.(IntType); !ok || it.Bits != 1 {
			return fmt.Errorf("conditional branch on non-i1 value")
		}
	case OpRet:
		if len(in.Args) == 0 {
			if _, ok := f.Ret.(VoidType); !ok {
				return fmt.Errorf("ret void in non-void function")
			}
		} else if !TypeEqual(in.Ty, f.Ret) {
			return fmt.Errorf("ret type %s does not match function return %s", in.Ty, f.Ret)
		}
	case OpCall:
		callee := m.Func(in.Callee)
		if callee != nil {
			if !TypeEqual(callee.Ret, in.Ty) {
				return fmt.Errorf("call result type %s does not match @%s return %s", in.Ty, in.Callee, callee.Ret)
			}
			if len(callee.Params) != len(in.Args) {
				return fmt.Errorf("call to @%s with %d args, want %d", in.Callee, len(in.Args), len(callee.Params))
			}
			for i, a := range in.Args {
				if !TypeEqual(a.Ty, callee.Params[i].Ty) {
					return fmt.Errorf("call arg %d type %s, want %s", i, a.Ty, callee.Params[i].Ty)
				}
			}
		}
	case OpSelect:
		if it, ok := in.Args[0].Ty.(IntType); !ok || it.Bits != 1 {
			return fmt.Errorf("select condition must be i1")
		}
	}
	return nil
}

// FuncGraph adapts a Function to the cfg analyses.
type FuncGraph struct{ F *Function }

// Blocks returns the block labels, entry first.
func (g FuncGraph) Blocks() []string {
	out := make([]string, len(g.F.Blocks))
	for i, b := range g.F.Blocks {
		out[i] = b.Name
	}
	return out
}

// Succs returns the control-flow successors of a block.
func (g FuncGraph) Succs(name string) []string {
	b := g.F.BlockByName(name)
	if b == nil || len(b.Instrs) == 0 {
		return nil
	}
	return b.Term().Labels
}

// UseDef returns the upward-exposed uses and definitions of a block (phi
// operands excluded: they are edge uses of the predecessors).
func (g FuncGraph) UseDef(name string) (use, def map[string]bool) {
	use = make(map[string]bool)
	def = make(map[string]bool)
	b := g.F.BlockByName(name)
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			for _, v := range in.Args {
				if v.Kind == VReg && !def[v.Name] {
					use[v.Name] = true
				}
			}
		}
		if in.Name != "" {
			def[in.Name] = true
		}
	}
	return use, def
}

// EdgeUse returns registers consumed by phis in `to` along the edge from
// `from`.
func (g FuncGraph) EdgeUse(from, to string) map[string]bool {
	out := make(map[string]bool)
	b := g.F.BlockByName(to)
	if b == nil {
		return out
	}
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		for _, inc := range in.Incoming {
			if inc.Pred == from && inc.Val.Kind == VReg {
				out[inc.Val.Name] = true
			}
		}
	}
	return out
}

// RegTypes returns the type of every register (params and results).
func RegTypes(f *Function) map[string]Type {
	out := make(map[string]Type)
	for _, p := range f.Params {
		out[p.Name] = p.Ty
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Name == "" {
				continue
			}
			if t, err := resultType(in); err == nil {
				out[in.Name] = t
			}
		}
	}
	return out
}
