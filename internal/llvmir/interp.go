package llvmir

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// UBError reports that execution reached undefined behavior. Kind is one
// of "oob", "overflow", "divzero" — the error-state taxonomy shared with
// the symbolic semantics (paper §4.6).
type UBError struct {
	Kind   string
	Detail string
}

func (e *UBError) Error() string {
	return fmt.Sprintf("llvmir: undefined behavior (%s): %s", e.Kind, e.Detail)
}

// Interp is a concrete reference interpreter over the common memory model.
// It defines the ground-truth behavior the symbolic semantics must agree
// with (checked by differential property tests).
type Interp struct {
	Mod    *Module
	Mem    *mem.Concrete
	Layout *mem.Layout
	// MaxSteps bounds total executed instructions (0 = 1e6).
	MaxSteps int
	// Externals supplies behavior for declared-only functions.
	Externals map[string]func(args []uint64) uint64

	steps   int
	allocaN int
}

// NewInterp builds an interpreter with a fresh layout holding the module's
// globals (initialized contents written to memory).
func NewInterp(m *Module) *Interp {
	layout := mem.NewLayout()
	cm := mem.NewConcrete(layout)
	for _, g := range m.Globals {
		o := layout.Alloc("@"+g.Name, uint64(SizeOf(g.Type)))
		for i, b := range g.Init {
			// Initializer writes bypass no checks: they are in range.
			if err := cm.Store(o.Base+uint64(i), 1, uint64(b)); err != nil {
				panic(err)
			}
		}
	}
	return &Interp{Mod: m, Mem: cm, Layout: layout, MaxSteps: 1 << 20}
}

type frame struct {
	fn   *Function
	regs map[string]uint64
}

func maskBits(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	return v & ((1 << bits) - 1)
}

func sext(v uint64, bits int) int64 {
	if bits >= 64 {
		return int64(v)
	}
	if v&(1<<(bits-1)) != 0 {
		return int64(v | ^uint64(0)<<bits)
	}
	return int64(v)
}

// Call runs the named function on the given argument values and returns
// its result (0 for void functions).
func (in *Interp) Call(name string, args []uint64) (uint64, error) {
	f := in.Mod.Func(name)
	if f == nil || !f.Defined() {
		if ext, ok := in.Externals[name]; ok {
			return ext(args), nil
		}
		return 0, fmt.Errorf("llvmir: call to unavailable function @%s", name)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("llvmir: @%s called with %d args, want %d", name, len(args), len(f.Params))
	}
	fr := &frame{fn: f, regs: make(map[string]uint64, len(f.Params))}
	for i, p := range f.Params {
		bits, err := BitsOf(p.Ty)
		if err != nil {
			return 0, err
		}
		fr.regs[p.Name] = maskBits(args[i], bits)
	}
	return in.run(fr)
}

func (in *Interp) run(fr *frame) (uint64, error) {
	blk := fr.fn.Entry()
	prev := ""
	idx := 0
	for {
		if in.steps++; in.steps > in.maxSteps() {
			return 0, errors.New("llvmir: step budget exhausted")
		}
		if idx >= len(blk.Instrs) {
			return 0, fmt.Errorf("llvmir: fell off block %%%s", blk.Name)
		}
		ins := blk.Instrs[idx]

		// Phis execute in parallel on block entry.
		if ins.Op == OpPhi {
			updates := make(map[string]uint64)
			for idx < len(blk.Instrs) && blk.Instrs[idx].Op == OpPhi {
				phi := blk.Instrs[idx]
				found := false
				for _, inc := range phi.Incoming {
					if inc.Pred == prev {
						v, err := in.value(fr, inc.Val)
						if err != nil {
							return 0, err
						}
						updates[phi.Name] = v
						found = true
						break
					}
				}
				if !found {
					return 0, fmt.Errorf("llvmir: phi %%%s has no incoming for predecessor %%%s", phi.Name, prev)
				}
				idx++
			}
			for k, v := range updates {
				fr.regs[k] = v
			}
			continue
		}

		switch ins.Op {
		case OpBr:
			prev, blk, idx = blk.Name, fr.fn.BlockByName(ins.Labels[0]), 0
			continue
		case OpCondBr:
			c, err := in.value(fr, ins.Args[0])
			if err != nil {
				return 0, err
			}
			target := ins.Labels[1]
			if c&1 == 1 {
				target = ins.Labels[0]
			}
			prev, blk, idx = blk.Name, fr.fn.BlockByName(target), 0
			continue
		case OpRet:
			if len(ins.Args) == 0 {
				return 0, nil
			}
			return in.value(fr, ins.Args[0])
		case OpCall:
			args := make([]uint64, len(ins.Args))
			for i, a := range ins.Args {
				v, err := in.value(fr, a)
				if err != nil {
					return 0, err
				}
				args[i] = v
			}
			ret, err := in.Call(ins.Callee, args)
			if err != nil {
				return 0, err
			}
			if ins.Name != "" {
				bits, err := BitsOf(ins.Ty)
				if err != nil {
					return 0, err
				}
				fr.regs[ins.Name] = maskBits(ret, bits)
			}
			idx++
			continue
		}

		v, err := in.exec(fr, ins)
		if err != nil {
			return 0, err
		}
		if ins.Name != "" {
			fr.regs[ins.Name] = v
		}
		idx++
	}
}

func (in *Interp) maxSteps() int {
	if in.MaxSteps == 0 {
		return 1 << 20
	}
	return in.MaxSteps
}

// value evaluates an operand.
func (in *Interp) value(fr *frame, v Value) (uint64, error) {
	switch v.Kind {
	case VInt:
		return v.Int, nil
	case VReg:
		val, ok := fr.regs[v.Name]
		if !ok {
			return 0, fmt.Errorf("llvmir: read of undefined register %%%s", v.Name)
		}
		return val, nil
	case VGlobal:
		o, ok := in.Layout.Find("@" + v.Name)
		if !ok {
			return 0, fmt.Errorf("llvmir: unknown global @%s", v.Name)
		}
		return o.Base + v.Off, nil
	}
	return 0, fmt.Errorf("llvmir: bad operand kind %d", v.Kind)
}

// exec evaluates a non-control instruction.
func (in *Interp) exec(fr *frame, ins *Instr) (uint64, error) {
	val := func(i int) (uint64, error) { return in.value(fr, ins.Args[i]) }
	switch ins.Op {
	case OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		a, err := val(0)
		if err != nil {
			return 0, err
		}
		b, err := val(1)
		if err != nil {
			return 0, err
		}
		bits := ins.Ty.(IntType).Bits
		return in.arith(ins, a, b, bits)
	case OpICmp:
		a, err := val(0)
		if err != nil {
			return 0, err
		}
		b, err := val(1)
		if err != nil {
			return 0, err
		}
		bits := 64
		if it, ok := ins.Ty.(IntType); ok {
			bits = it.Bits
		}
		return cmp(ins.Pred, a, b, bits), nil
	case OpTrunc, OpPtrToInt:
		a, err := val(0)
		if err != nil {
			return 0, err
		}
		return maskBits(a, ins.Ty.(IntType).Bits), nil
	case OpZExt, OpBitcast, OpIntToPtr:
		return val(0)
	case OpSExt:
		a, err := val(0)
		if err != nil {
			return 0, err
		}
		src := ins.SrcTy.(IntType).Bits
		dst := ins.Ty.(IntType).Bits
		return maskBits(uint64(sext(a, src)), dst), nil
	case OpGEP:
		base, err := val(0)
		if err != nil {
			return 0, err
		}
		off := int64(0)
		cur := ins.SrcTy
		for i, idxV := range ins.Args[1:] {
			iv, err := in.value(fr, idxV)
			if err != nil {
				return 0, err
			}
			bits := 64
			if it, ok := idxV.Ty.(IntType); ok {
				bits = it.Bits
			}
			s := sext(iv, bits)
			if i == 0 {
				off += s * int64(SizeOf(cur))
				continue
			}
			switch t := cur.(type) {
			case ArrayType:
				off += s * int64(SizeOf(t.Elem))
				cur = t.Elem
			default:
				return 0, fmt.Errorf("llvmir: gep into non-array at runtime")
			}
		}
		return base + uint64(off), nil
	case OpLoad:
		addr, err := val(0)
		if err != nil {
			return 0, err
		}
		size := SizeOf(ins.Ty)
		v, err := in.Mem.Load(addr, size)
		if err != nil {
			var oob *mem.ErrOOB
			if errors.As(err, &oob) {
				return 0, &UBError{Kind: "oob", Detail: err.Error()}
			}
			return 0, err
		}
		if bits, berr := BitsOf(ins.Ty); berr == nil {
			v = maskBits(v, bits)
		}
		return v, nil
	case OpStore:
		v, err := val(0)
		if err != nil {
			return 0, err
		}
		addr, err := val(1)
		if err != nil {
			return 0, err
		}
		size := SizeOf(ins.Ty)
		if err := in.Mem.Store(addr, size, v); err != nil {
			var oob *mem.ErrOOB
			if errors.As(err, &oob) {
				return 0, &UBError{Kind: "oob", Detail: err.Error()}
			}
			return 0, err
		}
		return 0, nil
	case OpAlloca:
		in.allocaN++
		o := in.Layout.Alloc(fmt.Sprintf("%%%s.%s.%d", fr.fn.Name, ins.Name, in.allocaN),
			uint64(SizeOf(ins.Ty)))
		return o.Base, nil
	case OpSelect:
		c, err := val(0)
		if err != nil {
			return 0, err
		}
		if c&1 == 1 {
			return val(1)
		}
		return val(2)
	}
	return 0, fmt.Errorf("llvmir: exec of unsupported op %s", opNames[ins.Op])
}

func (in *Interp) arith(ins *Instr, a, b uint64, bits int) (uint64, error) {
	m := func(v uint64) uint64 { return maskBits(v, bits) }
	switch ins.Op {
	case OpAdd:
		r := m(a + b)
		if ins.NSW && addOverflows(a, b, r, bits) {
			return 0, &UBError{Kind: "overflow", Detail: ins.String()}
		}
		return r, nil
	case OpSub:
		r := m(a - b)
		if ins.NSW && subOverflows(a, b, r, bits) {
			return 0, &UBError{Kind: "overflow", Detail: ins.String()}
		}
		return r, nil
	case OpMul:
		r := m(a * b)
		if ins.NSW && mulOverflows(a, b, bits) {
			return 0, &UBError{Kind: "overflow", Detail: ins.String()}
		}
		return r, nil
	case OpUDiv:
		if b == 0 {
			return 0, &UBError{Kind: "divzero", Detail: ins.String()}
		}
		return a / b, nil
	case OpURem:
		if b == 0 {
			return 0, &UBError{Kind: "divzero", Detail: ins.String()}
		}
		return a % b, nil
	case OpSDiv, OpSRem:
		bm := maskBits(b, bits)
		if bm == 0 {
			return 0, &UBError{Kind: "divzero", Detail: ins.String()}
		}
		sa, sb := sext(a, bits), sext(b, bits)
		if sa == -(int64(1)<<(bits-1)) && sb == -1 {
			return 0, &UBError{Kind: "overflow", Detail: ins.String()}
		}
		if ins.Op == OpSDiv {
			return m(uint64(sa / sb)), nil
		}
		return m(uint64(sa % sb)), nil
	case OpAnd:
		return a & b, nil
	case OpOr:
		return a | b, nil
	case OpXor:
		return a ^ b, nil
	case OpShl:
		if b >= uint64(bits) {
			return 0, nil
		}
		return m(a << b), nil
	case OpLShr:
		if b >= uint64(bits) {
			return 0, nil
		}
		return a >> b, nil
	case OpAShr:
		sh := b
		if sh >= uint64(bits) {
			sh = uint64(bits) - 1
		}
		return m(uint64(sext(a, bits) >> sh)), nil
	}
	return 0, fmt.Errorf("llvmir: bad arith op")
}

func addOverflows(a, b, r uint64, bits int) bool {
	sa, sb, sr := sext(a, bits) < 0, sext(b, bits) < 0, sext(r, bits) < 0
	return sa == sb && sr != sa
}

func subOverflows(a, b, r uint64, bits int) bool {
	sa, sb, sr := sext(a, bits) < 0, sext(b, bits) < 0, sext(r, bits) < 0
	return sa != sb && sr != sa
}

func mulOverflows(a, b uint64, bits int) bool {
	if bits > 32 {
		// Matches the symbolic semantics: 64-bit nsw mul is treated as
		// non-overflowing (see smt.MulOverflowSigned).
		return false
	}
	sa, sb := sext(a, bits), sext(b, bits)
	p := sa * sb
	return sext(maskBits(uint64(p), bits), bits) != p
}

func cmp(pred CmpPred, a, b uint64, bits int) uint64 {
	am, bm := maskBits(a, bits), maskBits(b, bits)
	sa, sb := sext(am, bits), sext(bm, bits)
	var r bool
	switch pred {
	case CmpEQ:
		r = am == bm
	case CmpNE:
		r = am != bm
	case CmpULT:
		r = am < bm
	case CmpULE:
		r = am <= bm
	case CmpUGT:
		r = am > bm
	case CmpUGE:
		r = am >= bm
	case CmpSLT:
		r = sa < sb
	case CmpSLE:
		r = sa <= sb
	case CmpSGT:
		r = sa > sb
	case CmpSGE:
		r = sa >= sb
	}
	if r {
		return 1
	}
	return 0
}
