package llvmir

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/smt"
)

// CallSite identifies a static call site within a function.
type CallSite struct {
	Block  string
	Index  int // instruction index within the block
	Callee string
	Instr  *Instr
}

// CallSites returns the function's call sites in layout order. The k-th
// entry corresponds to the location "call:<callee>:<k>:before"/":after".
func CallSites(f *Function) []CallSite {
	var out []CallSite
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op == OpCall {
				out = append(out, CallSite{Block: b.Name, Index: i, Callee: in.Callee, Instr: in})
			}
		}
	}
	return out
}

// BuildLayout allocates the module's globals and the function's allocas in
// a fresh layout. Both sides of a validation instance must execute against
// the same layout so that addresses agree (the common memory model,
// paper §4.4). Alloca objects are named "%<fn>.<reg>"; ISel emits frame
// slots with the same names.
func BuildLayout(m *Module, f *Function) *mem.Layout {
	layout := mem.NewLayout()
	for _, g := range m.Globals {
		layout.Alloc("@"+g.Name, uint64(SizeOf(g.Type)))
	}
	if f != nil {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == OpAlloca {
					layout.Alloc(AllocaObjectName(f, in.Name), uint64(SizeOf(in.Ty)))
				}
			}
		}
	}
	return layout
}

// AllocaObjectName is the layout object name for an alloca result register.
func AllocaObjectName(f *Function, reg string) string {
	return "%" + f.Name + "." + reg
}

// Sem is the symbolic semantics of one LLVM function, implementing
// core.Semantics (the left side of the ISel validation instance).
type Sem struct {
	Ctx    *smt.Context
	Mod    *Module
	Fn     *Function
	Layout *mem.Layout

	regTypes map[string]Type
	sites    []CallSite
	instN    int // instantiation counter for lazy-havoc variable naming
}

// NewSem builds the symbolic semantics for f against the shared layout.
func NewSem(ctx *smt.Context, m *Module, f *Function, layout *mem.Layout) *Sem {
	return &Sem{
		Ctx:      ctx,
		Mod:      m,
		Fn:       f,
		Layout:   layout,
		regTypes: RegTypes(f),
		sites:    CallSites(f),
	}
}

// state is a symbolic LLVM configuration.
type state struct {
	sem    *Sem
	instID int

	block     *Block
	prev      string
	idx       int
	arrived   bool // at block start, phis not yet executed
	afterCall int  // ≥0: just past call site #afterCall, not yet committed

	regs map[string]*smt.Term
	mem  *mem.Symbolic
	pc   *smt.Term

	final   bool
	errKind string
	ret     *smt.Term // nil for void or non-final
}

var _ core.State = (*state)(nil)

// Loc implements core.State.
func (s *state) Loc() core.Location {
	switch {
	case s.errKind != "":
		return core.ErrorLoc(s.errKind)
	case s.final:
		return "exit"
	case s.afterCall >= 0:
		return core.Location(fmt.Sprintf("call:%s:%d:after",
			s.sem.sites[s.afterCall].Callee, s.afterCall))
	case s.arrived && s.prev == "" && s.block == s.sem.Fn.Entry():
		return "entry"
	case s.arrived:
		return core.Location("block:" + s.block.Name + ":from:" + s.prev)
	}
	if s.idx < len(s.block.Instrs) && s.block.Instrs[s.idx].Op == OpCall {
		if k := s.sem.siteIndex(s.block.Name, s.idx); k >= 0 {
			return core.Location(fmt.Sprintf("call:%s:%d:before", s.sem.sites[k].Callee, k))
		}
	}
	return core.Location(fmt.Sprintf("at:%s:%d:from:%s", s.block.Name, s.idx, s.prev))
}

func (sm *Sem) siteIndex(block string, idx int) int {
	for k, st := range sm.sites {
		if st.Block == block && st.Index == idx {
			return k
		}
	}
	return -1
}

// PathCond implements core.State.
func (s *state) PathCond() *smt.Term { return s.pc }

// MemTerm implements core.State.
func (s *state) MemTerm() *smt.Term { return s.mem.Term() }

// IsFinal implements core.State.
func (s *state) IsFinal() bool { return s.final }

// ErrorKind implements core.State.
func (s *state) ErrorKind() string { return s.errKind }

// Observable implements core.State. Supported names: "%reg", "ret" (at
// exit states), and "argN" (at before-call states).
func (s *state) Observable(name string) (*smt.Term, error) {
	switch {
	case name == "ret":
		if !s.final {
			return nil, fmt.Errorf("llvmir: 'ret' observable on non-final state")
		}
		if s.ret == nil {
			return nil, fmt.Errorf("llvmir: void function has no 'ret' observable")
		}
		return s.ret, nil
	case strings.HasPrefix(name, "%"):
		reg := name[1:]
		ty, ok := s.sem.regTypes[reg]
		if !ok {
			return nil, fmt.Errorf("llvmir: unknown register %s", name)
		}
		bits, err := BitsOf(ty)
		if err != nil {
			return nil, err
		}
		return s.reg(reg, uint8(bits)), nil
	case strings.HasPrefix(name, "arg"):
		n, err := strconv.Atoi(name[3:])
		if err != nil {
			return nil, fmt.Errorf("llvmir: bad observable %q", name)
		}
		if s.idx >= len(s.block.Instrs) || s.block.Instrs[s.idx].Op != OpCall {
			return nil, fmt.Errorf("llvmir: %q observable outside a call-site state", name)
		}
		call := s.block.Instrs[s.idx]
		if n < 0 || n >= len(call.Args) {
			return nil, fmt.Errorf("llvmir: call has no argument %d", n)
		}
		return s.value(call.Args[n])
	}
	return nil, fmt.Errorf("llvmir: unknown observable %q", name)
}

// reg reads a register, materializing a fresh unconstrained variable on
// first read (lazy havoc). The variable name is stable per instantiation
// so that sibling branch states agree on it.
func (s *state) reg(name string, width uint8) *smt.Term {
	if t, ok := s.regs[name]; ok {
		return t
	}
	t := s.sem.Ctx.VarBV(fmt.Sprintf("llvm!i%d!%s", s.instID, name), width)
	s.regs[name] = t
	return t
}

func (s *state) clone() *state {
	regs := make(map[string]*smt.Term, len(s.regs)+1)
	for k, v := range s.regs {
		regs[k] = v
	}
	n := *s
	n.regs = regs
	return &n
}

// value evaluates an operand to a term.
func (s *state) value(v Value) (*smt.Term, error) {
	ctx := s.sem.Ctx
	switch v.Kind {
	case VInt:
		bits, err := BitsOf(v.Ty)
		if err != nil {
			return nil, err
		}
		return ctx.BV(v.Int, uint8(bits)), nil
	case VReg:
		bits, err := BitsOf(v.Ty)
		if err != nil {
			return nil, err
		}
		return s.reg(v.Name, uint8(bits)), nil
	case VGlobal:
		o, ok := s.sem.Layout.Find("@" + v.Name)
		if !ok {
			return nil, fmt.Errorf("llvmir: global @%s not in layout", v.Name)
		}
		return ctx.BV(o.Base+v.Off, 64), nil
	}
	return nil, fmt.Errorf("llvmir: bad operand kind %d", v.Kind)
}

// Instantiate implements core.Semantics.
func (sm *Sem) Instantiate(loc core.Location, presets map[string]*smt.Term, memT *smt.Term) (core.State, error) {
	sm.instN++
	s := &state{
		sem:       sm,
		instID:    sm.instN,
		afterCall: -1,
		regs:      make(map[string]*smt.Term, len(presets)),
		pc:        sm.Ctx.True(),
	}
	if memT == nil {
		memT = sm.Ctx.VarMem(fmt.Sprintf("Mllvm!%d", sm.instN))
	}
	s.mem = mem.NewSymbolic(sm.Ctx, "unused", sm.Layout).WithTerm(memT)

	for name, t := range presets {
		if !strings.HasPrefix(name, "%") {
			return nil, fmt.Errorf("llvmir: cannot preset observable %q", name)
		}
		s.regs[name[1:]] = t
	}

	ls := string(loc)
	switch {
	case ls == "entry":
		s.block = sm.Fn.Entry()
		s.arrived = true
	case strings.HasPrefix(ls, "block:"):
		rest := ls[len("block:"):]
		i := strings.Index(rest, ":from:")
		if i < 0 {
			return nil, fmt.Errorf("llvmir: malformed block location %q", ls)
		}
		b := sm.Fn.BlockByName(rest[:i])
		if b == nil {
			return nil, fmt.Errorf("llvmir: no block %q", rest[:i])
		}
		s.block = b
		s.prev = rest[i+len(":from:"):]
		s.arrived = true
	case strings.HasPrefix(ls, "call:") && strings.HasSuffix(ls, ":after"):
		k, err := callIndexOf(ls)
		if err != nil {
			return nil, err
		}
		if k < 0 || k >= len(sm.sites) {
			return nil, fmt.Errorf("llvmir: no call site %d", k)
		}
		site := sm.sites[k]
		s.block = sm.Fn.BlockByName(site.Block)
		s.idx = site.Index + 1
		s.afterCall = k
		s.prev = "?after-call"
	default:
		return nil, fmt.Errorf("llvmir: cannot instantiate at location %q", ls)
	}
	return s, nil
}

func callIndexOf(loc string) (int, error) {
	parts := strings.Split(loc, ":")
	if len(parts) != 4 {
		return 0, fmt.Errorf("llvmir: malformed call location %q", loc)
	}
	return strconv.Atoi(parts[2])
}

// ObservableWidth implements core.Semantics.
func (sm *Sem) ObservableWidth(loc core.Location, name string) (uint8, error) {
	switch {
	case name == "ret":
		bits, err := BitsOf(sm.Fn.Ret)
		if err != nil {
			return 0, fmt.Errorf("llvmir: %w", err)
		}
		return uint8(bits), nil
	case strings.HasPrefix(name, "%"):
		ty, ok := sm.regTypes[name[1:]]
		if !ok {
			return 0, fmt.Errorf("llvmir: unknown register %s", name)
		}
		bits, err := BitsOf(ty)
		if err != nil {
			return 0, err
		}
		return uint8(bits), nil
	case strings.HasPrefix(name, "arg"):
		k, err := callIndexOf(string(loc))
		if err != nil {
			return 0, err
		}
		n, err := strconv.Atoi(name[3:])
		if err != nil || k < 0 || k >= len(sm.sites) {
			return 0, fmt.Errorf("llvmir: bad arg observable %q at %q", name, loc)
		}
		site := sm.sites[k]
		if n < 0 || n >= len(site.Instr.Args) {
			return 0, fmt.Errorf("llvmir: call site %d has no argument %d", k, n)
		}
		bits, err := BitsOf(site.Instr.Args[n].Ty)
		if err != nil {
			return 0, err
		}
		return uint8(bits), nil
	}
	return 0, fmt.Errorf("llvmir: unknown observable %q", name)
}

// Step implements core.Semantics: one symbolic instruction step (phi
// groups execute atomically). Undefined behavior produces an additional
// error-state successor guarded by the UB condition (paper §4.6).
func (sm *Sem) Step(cs core.State) ([]core.State, error) {
	s, ok := cs.(*state)
	if !ok {
		return nil, fmt.Errorf("llvmir: foreign state %T", cs)
	}
	if s.final || s.errKind != "" {
		return nil, nil
	}
	if s.idx >= len(s.block.Instrs) {
		return nil, fmt.Errorf("llvmir: fell off block %%%s", s.block.Name)
	}
	ctx := sm.Ctx
	_ = ctx

	// After-call arrival: commit the position (zero-instruction step) so
	// that an immediately following call site gets its own cut location.
	if s.afterCall >= 0 {
		n := s.clone()
		n.afterCall = -1
		return []core.State{n}, nil
	}

	// Arrival step: commit block entry, executing the leading phi group in
	// parallel. This keeps the block-entry location distinct from the
	// location of the first real instruction (which may itself be a cut,
	// e.g. a call site).
	if s.arrived {
		n := s.clone()
		n.arrived = false
		updates := make(map[string]*smt.Term)
		for n.idx < len(s.block.Instrs) && s.block.Instrs[n.idx].Op == OpPhi {
			phi := s.block.Instrs[n.idx]
			found := false
			for _, inc := range phi.Incoming {
				if inc.Pred == s.prev {
					v, err := s.value(inc.Val)
					if err != nil {
						return nil, err
					}
					updates[phi.Name] = v
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("llvmir: phi %%%s has no incoming for %%%s", phi.Name, s.prev)
			}
			n.idx++
		}
		for k, v := range updates {
			n.regs[k] = v
		}
		return []core.State{n}, nil
	}
	ins := s.block.Instrs[s.idx]

	switch ins.Op {
	case OpBr:
		n := s.clone()
		n.prev = s.block.Name
		n.block = sm.Fn.BlockByName(ins.Labels[0])
		n.idx = 0
		n.arrived = true
		return []core.State{n}, nil

	case OpCondBr:
		c, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		cond := ctx.Eq(c, ctx.BV(1, 1))
		nT := s.clone()
		nT.pc = ctx.AndB(s.pc, cond)
		nT.prev = s.block.Name
		nT.block = sm.Fn.BlockByName(ins.Labels[0])
		nT.idx = 0
		nT.arrived = true
		nF := s.clone()
		nF.pc = ctx.AndB(s.pc, ctx.Not(cond))
		nF.prev = s.block.Name
		nF.block = sm.Fn.BlockByName(ins.Labels[1])
		nF.idx = 0
		nF.arrived = true
		return []core.State{nT, nF}, nil

	case OpRet:
		n := s.clone()
		n.final = true
		if len(ins.Args) > 0 {
			v, err := s.value(ins.Args[0])
			if err != nil {
				return nil, err
			}
			n.ret = v
		}
		return []core.State{n}, nil

	case OpCall:
		// Calls are synchronization boundaries (paper §4.5): execution must
		// stop at the before-call cut. Reaching Step here means the VC did
		// not cover this call site.
		return nil, fmt.Errorf("llvmir: call site @%s not covered by a synchronization point", ins.Callee)
	}

	succs, err := sm.execSym(s, ins)
	if err != nil {
		return nil, err
	}
	return succs, nil
}

// execSym handles non-control instructions; it may return an extra error
// successor for UB.
func (sm *Sem) execSym(s *state, ins *Instr) ([]core.State, error) {
	ctx := sm.Ctx
	advance := func(n *state) *state { n.idx++; return n }

	setResult := func(v *smt.Term) []core.State {
		n := s.clone()
		if ins.Name != "" {
			n.regs[ins.Name] = v
		}
		return []core.State{advance(n)}
	}

	// ubSplit returns (okState, errState) where errState is guarded by bad.
	ubSplit := func(kind string, bad *smt.Term, v *smt.Term) []core.State {
		n := s.clone()
		if ins.Name != "" {
			n.regs[ins.Name] = v
		}
		n.pc = ctx.AndB(s.pc, ctx.Not(bad))
		advance(n)
		out := []core.State{n}
		if !bad.IsFalse() {
			e := s.clone()
			e.pc = ctx.AndB(s.pc, bad)
			e.errKind = kind
			out = append(out, e)
		}
		return out
	}

	switch ins.Op {
	case OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		a, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		b, err := s.value(ins.Args[1])
		if err != nil {
			return nil, err
		}
		switch ins.Op {
		case OpAdd:
			if ins.NSW {
				return ubSplit("overflow", ctx.AddOverflowSigned(a, b), ctx.Add(a, b)), nil
			}
			return setResult(ctx.Add(a, b)), nil
		case OpSub:
			if ins.NSW {
				return ubSplit("overflow", ctx.SubOverflowSigned(a, b), ctx.Sub(a, b)), nil
			}
			return setResult(ctx.Sub(a, b)), nil
		case OpMul:
			if ins.NSW {
				return ubSplit("overflow", ctx.MulOverflowSigned(a, b), ctx.Mul(a, b)), nil
			}
			return setResult(ctx.Mul(a, b)), nil
		case OpUDiv:
			return ubSplit("divzero", ctx.Eq(b, ctx.BV(0, b.Width)), ctx.UDiv(a, b)), nil
		case OpURem:
			return ubSplit("divzero", ctx.Eq(b, ctx.BV(0, b.Width)), ctx.URem(a, b)), nil
		case OpSDiv, OpSRem:
			// Two UB conditions: division by zero and INT_MIN / -1. Model
			// them as separate error kinds so they pair with the matching
			// x86 trap conditions.
			bz := ctx.Eq(b, ctx.BV(0, b.Width))
			ov := ctx.SDivOverflow(a, b)
			var res *smt.Term
			if ins.Op == OpSDiv {
				res = ctx.SDiv(a, b)
			} else {
				res = ctx.SRem(a, b)
			}
			n := s.clone()
			if ins.Name != "" {
				n.regs[ins.Name] = res
			}
			n.pc = ctx.AndB(s.pc, ctx.AndB(ctx.Not(bz), ctx.Not(ov)))
			n.idx++
			out := []core.State{n}
			if !bz.IsFalse() {
				e := s.clone()
				e.pc = ctx.AndB(s.pc, bz)
				e.errKind = "divzero"
				out = append(out, e)
			}
			if !ov.IsFalse() {
				e := s.clone()
				e.pc = ctx.AndB(s.pc, ctx.AndB(ctx.Not(bz), ov))
				e.errKind = "overflow"
				out = append(out, e)
			}
			return out, nil
		case OpAnd:
			return setResult(ctx.And(a, b)), nil
		case OpOr:
			return setResult(ctx.Or(a, b)), nil
		case OpXor:
			return setResult(ctx.Xor(a, b)), nil
		case OpShl:
			return setResult(ctx.Shl(a, b)), nil
		case OpLShr:
			return setResult(ctx.LShr(a, b)), nil
		default:
			return setResult(ctx.AShr(a, b)), nil
		}

	case OpICmp:
		a, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		b, err := s.value(ins.Args[1])
		if err != nil {
			return nil, err
		}
		var cond *smt.Term
		switch ins.Pred {
		case CmpEQ:
			cond = ctx.Eq(a, b)
		case CmpNE:
			cond = ctx.Not(ctx.Eq(a, b))
		case CmpULT:
			cond = ctx.Ult(a, b)
		case CmpULE:
			cond = ctx.Ule(a, b)
		case CmpUGT:
			cond = ctx.Ult(b, a)
		case CmpUGE:
			cond = ctx.Ule(b, a)
		case CmpSLT:
			cond = ctx.Slt(a, b)
		case CmpSLE:
			cond = ctx.Sle(a, b)
		case CmpSGT:
			cond = ctx.Slt(b, a)
		case CmpSGE:
			cond = ctx.Sle(b, a)
		}
		return setResult(ctx.Ite(cond, ctx.BV(1, 1), ctx.BV(0, 1))), nil

	case OpTrunc:
		v, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		return setResult(ctx.Extract(v, uint8(ins.Ty.(IntType).Bits)-1, 0)), nil
	case OpZExt:
		v, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		return setResult(ctx.ZExt(v, uint8(ins.Ty.(IntType).Bits))), nil
	case OpSExt:
		v, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		return setResult(ctx.SExt(v, uint8(ins.Ty.(IntType).Bits))), nil
	case OpBitcast:
		v, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		return setResult(v), nil
	case OpIntToPtr:
		v, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		if v.Width < 64 {
			v = ctx.ZExt(v, 64)
		}
		return setResult(v), nil
	case OpPtrToInt:
		v, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		bits := uint8(ins.Ty.(IntType).Bits)
		if bits < 64 {
			v = ctx.Extract(v, bits-1, 0)
		}
		return setResult(v), nil

	case OpGEP:
		base, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		addr := base
		cur := ins.SrcTy
		for i, idxV := range ins.Args[1:] {
			iv, err := s.value(idxV)
			if err != nil {
				return nil, err
			}
			iv64 := ctx.SExt(iv, 64)
			var scale int
			if i == 0 {
				scale = SizeOf(cur)
			} else {
				at, ok := cur.(ArrayType)
				if !ok {
					return nil, fmt.Errorf("llvmir: symbolic gep into non-array %s", cur)
				}
				scale = SizeOf(at.Elem)
				cur = at.Elem
			}
			addr = ctx.Add(addr, ctx.Mul(iv64, ctx.BV(uint64(scale), 64)))
		}
		return setResult(addr), nil

	case OpLoad:
		addr, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		size := SizeOf(ins.Ty)
		inb := s.mem.InBoundsCond(addr, size)
		loaded := s.mem.Load(addr, size)
		bits, err := BitsOf(ins.Ty)
		if err != nil {
			return nil, err
		}
		if bits < 8*size {
			loaded = ctx.Extract(loaded, uint8(bits)-1, 0)
		}
		return ubSplit("oob", ctx.Not(inb), loaded), nil

	case OpStore:
		v, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		addr, err := s.value(ins.Args[1])
		if err != nil {
			return nil, err
		}
		size := SizeOf(ins.Ty)
		if int(v.Width) < 8*size {
			v = ctx.ZExt(v, uint8(8*size))
		}
		inb := s.mem.InBoundsCond(addr, size)
		bad := ctx.Not(inb)
		n := s.clone()
		n.mem = s.mem.Store(addr, size, v)
		n.pc = ctx.AndB(s.pc, ctx.Not(bad))
		advance(n)
		out := []core.State{n}
		if !bad.IsFalse() {
			e := s.clone()
			e.pc = ctx.AndB(s.pc, bad)
			e.errKind = "oob"
			out = append(out, e)
		}
		return out, nil

	case OpAlloca:
		o, ok := sm.Layout.Find(AllocaObjectName(sm.Fn, ins.Name))
		if !ok {
			return nil, fmt.Errorf("llvmir: alloca %%%s not pre-allocated in layout", ins.Name)
		}
		return setResult(ctx.BV(o.Base, 64)), nil

	case OpSelect:
		c, err := s.value(ins.Args[0])
		if err != nil {
			return nil, err
		}
		a, err := s.value(ins.Args[1])
		if err != nil {
			return nil, err
		}
		b, err := s.value(ins.Args[2])
		if err != nil {
			return nil, err
		}
		return setResult(ctx.Ite(ctx.Eq(c, ctx.BV(1, 1)), a, b)), nil
	}
	return nil, fmt.Errorf("llvmir: symbolic execution of unsupported op %s", opNames[ins.Op])
}
