// Package llvmir implements the subset of LLVM IR modeled by the paper
// (§4.2): integer types i1–i64, nested array/struct aggregates, pointers,
// integer arithmetic/bitwise/comparison instructions, casts (including
// inttoptr/ptrtoint), getelementptr, control flow (br, call, ret, phi),
// and memory operations (load, store, alloca) over the common memory model
// of internal/mem.
//
// The package provides a textual parser for .ll-style syntax, a verifier,
// a concrete reference interpreter, and symbolic semantics implementing
// the language-parametric interfaces of internal/core.
package llvmir

import (
	"fmt"
	"strings"
)

// Type is an LLVM IR first-class type.
type Type interface {
	String() string
	isType()
}

// IntType is an integer type iN with 1 ≤ N ≤ 64.
type IntType struct{ Bits int }

func (t IntType) isType()        {}
func (t IntType) String() string { return fmt.Sprintf("i%d", t.Bits) }

// PtrType is a typed pointer T*.
type PtrType struct{ Elem Type }

func (t PtrType) isType()        {}
func (t PtrType) String() string { return t.Elem.String() + "*" }

// ArrayType is [N x T].
type ArrayType struct {
	N    int
	Elem Type
}

func (t ArrayType) isType()        {}
func (t ArrayType) String() string { return fmt.Sprintf("[%d x %s]", t.N, t.Elem) }

// StructType is {T1, T2, ...} (packed: the common memory model has no
// alignment padding, matching the paper's §4.2 restriction).
type StructType struct{ Fields []Type }

func (t StructType) isType() {}
func (t StructType) String() string {
	parts := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		parts[i] = f.String()
	}
	return "{ " + strings.Join(parts, ", ") + " }"
}

// VoidType is the void function-return type.
type VoidType struct{}

func (t VoidType) isType()        {}
func (t VoidType) String() string { return "void" }

// I1, I8, I16, I32, I64 are the common integer types.
var (
	I1  = IntType{1}
	I8  = IntType{8}
	I16 = IntType{16}
	I32 = IntType{32}
	I64 = IntType{64}
)

// SizeOf returns the byte size of t in the common memory model: integers
// occupy ceil(bits/8) bytes, pointers 8 bytes, aggregates are packed.
func SizeOf(t Type) int {
	switch t := t.(type) {
	case IntType:
		return (t.Bits + 7) / 8
	case PtrType:
		return 8
	case ArrayType:
		return t.N * SizeOf(t.Elem)
	case StructType:
		n := 0
		for _, f := range t.Fields {
			n += SizeOf(f)
		}
		return n
	case VoidType:
		return 0
	}
	panic(fmt.Sprintf("llvmir: SizeOf of unknown type %T", t))
}

// BitsOf returns the value width of t when held in a register: integer
// bit width, 64 for pointers. Aggregates are not first-class here.
func BitsOf(t Type) (int, error) {
	switch t := t.(type) {
	case IntType:
		return t.Bits, nil
	case PtrType:
		return 64, nil
	}
	return 0, fmt.Errorf("llvmir: type %s is not register-sized", t)
}

// TypeEqual reports structural equality of types.
func TypeEqual(a, b Type) bool {
	switch a := a.(type) {
	case IntType:
		b, ok := b.(IntType)
		return ok && a.Bits == b.Bits
	case PtrType:
		b, ok := b.(PtrType)
		return ok && TypeEqual(a.Elem, b.Elem)
	case ArrayType:
		b, ok := b.(ArrayType)
		return ok && a.N == b.N && TypeEqual(a.Elem, b.Elem)
	case StructType:
		b, ok := b.(StructType)
		if !ok || len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			if !TypeEqual(a.Fields[i], b.Fields[i]) {
				return false
			}
		}
		return true
	case VoidType:
		_, ok := b.(VoidType)
		return ok
	}
	return false
}

// FieldOffset returns the byte offset of field i in a struct type.
func FieldOffset(t StructType, i int) int {
	off := 0
	for j := 0; j < i; j++ {
		off += SizeOf(t.Fields[j])
	}
	return off
}
