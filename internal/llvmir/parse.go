package llvmir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a module in the supported .ll subset. See the package
// comment for the covered language; notable syntax:
//
//	@g = external global [8 x i8]
//	@a = global i48 zeroinitializer
//	declare i32 @callee(i32)
//	define i32 @f(i32 %x) { ... }
//
// Operands may be registers, integer literals, globals, and the constant
// expressions `getelementptr inbounds (...)` and `bitcast (... to T)`,
// which are folded to global+offset form at parse time.
func Parse(src string) (*Module, error) {
	p := &parser{lex: newLexer(src)}
	m, err := p.module()
	if err != nil {
		return nil, fmt.Errorf("llvmir: line %d: %w", p.lex.line, err)
	}
	return m, nil
}

// ParseFunction parses a module and returns its sole defined function
// (convenience for tests and examples).
func ParseFunction(src string) (*Function, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	var found *Function
	for _, f := range m.Funcs {
		if f.Defined() {
			if found != nil {
				return nil, fmt.Errorf("llvmir: multiple function definitions")
			}
			found = f
		}
	}
	if found == nil {
		return nil, fmt.Errorf("llvmir: no function definition")
	}
	return found, nil
}

// --- Lexer ---

type tokKind uint8

const (
	tEOF tokKind = iota
	tWord
	tLocal  // %name
	tGlobal // @name
	tInt
	tPunct // single-rune punctuation
)

type token struct {
	kind tokKind
	text string
	num  int64
}

type lexer struct {
	src  string
	pos  int
	line int
	tok  token
}

func newLexer(src string) *lexer {
	l := &lexer{src: src, line: 1}
	l.next()
	return l
}

func (l *lexer) next() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == ';': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		l.tok = token{kind: tEOF}
		return
	}
	c := l.src[l.pos]
	switch {
	case c == '%' || c == '@':
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start+1 : l.pos]
		if c == '%' {
			l.tok = token{kind: tLocal, text: text}
		} else {
			l.tok = token{kind: tGlobal, text: text}
		}
	case c == '-' || c >= '0' && c <= '9':
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
			l.pos++
		}
		n, err := strconv.ParseInt(l.src[start:l.pos], 10, 64)
		if err != nil {
			// Out-of-range literal: parse as unsigned.
			u, uerr := strconv.ParseUint(l.src[start:l.pos], 10, 64)
			if uerr != nil {
				l.tok = token{kind: tPunct, text: l.src[start:l.pos]}
				return
			}
			n = int64(u)
		}
		l.tok = token{kind: tInt, num: n, text: l.src[start:l.pos]}
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		l.tok = token{kind: tWord, text: l.src[start:l.pos]}
	default:
		l.pos++
		l.tok = token{kind: tPunct, text: string(c)}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || unicode.IsLetter(rune(c))
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || c == '-' || unicode.IsLetter(rune(c)) || c >= '0' && c <= '9'
}

// --- Parser ---

type parser struct {
	lex *lexer
}

func (p *parser) tok() token { return p.lex.tok }
func (p *parser) advance()   { p.lex.next() }
func (p *parser) at(k tokKind, text string) bool {
	t := p.tok()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) eat(k tokKind, text string) bool {
	if p.at(k, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(k tokKind, text string) (token, error) {
	t := p.tok()
	if !p.at(k, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("<%d>", k)
		}
		return t, fmt.Errorf("expected %q, found %q", want, t.text)
	}
	p.advance()
	return t, nil
}

func (p *parser) module() (*Module, error) {
	m := &Module{}
	for !p.at(tEOF, "") {
		switch {
		case p.tok().kind == tGlobal:
			g, err := p.global()
			if err != nil {
				return nil, err
			}
			m.Globals = append(m.Globals, g)
		case p.at(tWord, "define"):
			f, err := p.define()
			if err != nil {
				return nil, err
			}
			m.Funcs = append(m.Funcs, f)
		case p.at(tWord, "declare"):
			f, err := p.declare()
			if err != nil {
				return nil, err
			}
			m.Funcs = append(m.Funcs, f)
		default:
			return nil, fmt.Errorf("unexpected top-level token %q", p.tok().text)
		}
	}
	return m, nil
}

func (p *parser) global() (*Global, error) {
	name := p.tok().text
	p.advance()
	if _, err := p.expect(tPunct, "="); err != nil {
		return nil, err
	}
	g := &Global{Name: name}
	if p.eat(tWord, "external") {
		g.External = true
	}
	// Accept and ignore common linkage/attribute words.
	for p.at(tWord, "private") || p.at(tWord, "internal") || p.at(tWord, "constant") ||
		p.at(tWord, "unnamed_addr") || p.at(tWord, "dso_local") {
		p.advance()
	}
	if !p.eat(tWord, "global") {
		return nil, fmt.Errorf("expected 'global' in definition of @%s", name)
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	g.Type = ty
	// Optional initializer: zeroinitializer or an integer for int types.
	if !g.External {
		switch {
		case p.eat(tWord, "zeroinitializer"):
		case p.tok().kind == tInt:
			v := uint64(p.tok().num)
			p.advance()
			size := SizeOf(ty)
			g.Init = make([]byte, size)
			for i := 0; i < size && i < 8; i++ {
				g.Init[i] = byte(v >> (8 * i))
			}
		}
	}
	// Optional ", align N".
	p.skipAlign()
	return g, nil
}

func (p *parser) skipAlign() {
	if p.at(tPunct, ",") {
		// Only consume if followed by align.
		save := *p.lex
		p.advance()
		if p.eat(tWord, "align") {
			if p.tok().kind == tInt {
				p.advance()
			}
			return
		}
		*p.lex = save
	}
}

func (p *parser) declare() (*Function, error) {
	p.advance() // declare
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tGlobal, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	f := &Function{Name: name.text, Ret: ret}
	for !p.eat(tPunct, ")") {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pname := ""
		if p.tok().kind == tLocal {
			pname = p.tok().text
			p.advance()
		}
		f.Params = append(f.Params, Param{Name: pname, Ty: ty})
		if !p.eat(tPunct, ",") && !p.at(tPunct, ")") {
			return nil, fmt.Errorf("expected ',' or ')' in parameter list")
		}
	}
	return f, nil
}

func (p *parser) define() (*Function, error) {
	f, err := p.declare() // same header shape after the keyword
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, "{"); err != nil {
		return nil, err
	}
	for !p.eat(tPunct, "}") {
		blk, err := p.block()
		if err != nil {
			return nil, err
		}
		f.Blocks = append(f.Blocks, blk)
	}
	return f, nil
}

func (p *parser) block() (*Block, error) {
	// Label: word ':' — the entry block label may be implicit in real
	// LLVM, but this subset requires explicit labels.
	lbl := p.tok()
	if lbl.kind != tWord {
		return nil, fmt.Errorf("expected block label, found %q", lbl.text)
	}
	p.advance()
	if _, err := p.expect(tPunct, ":"); err != nil {
		return nil, err
	}
	blk := &Block{Name: lbl.text}
	for {
		in, err := p.instr()
		if err != nil {
			return nil, fmt.Errorf("block %%%s: %w", blk.Name, err)
		}
		blk.Instrs = append(blk.Instrs, in)
		if in.IsTerminator() {
			return blk, nil
		}
	}
}

func (p *parser) parseType() (Type, error) {
	var base Type
	t := p.tok()
	switch {
	case t.kind == tWord && t.text == "void":
		p.advance()
		base = VoidType{}
	case t.kind == tWord && strings.HasPrefix(t.text, "i"):
		bits, err := strconv.Atoi(t.text[1:])
		if err != nil || bits < 1 || bits > 64 {
			return nil, fmt.Errorf("unsupported type %q", t.text)
		}
		p.advance()
		base = IntType{bits}
	case t.kind == tPunct && t.text == "[":
		p.advance()
		n := p.tok()
		if n.kind != tInt || n.num < 0 {
			return nil, fmt.Errorf("bad array length %q", n.text)
		}
		p.advance()
		if _, err := p.expect(tWord, "x"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, "]"); err != nil {
			return nil, err
		}
		base = ArrayType{N: int(n.num), Elem: elem}
	case t.kind == tPunct && t.text == "{":
		p.advance()
		st := StructType{}
		for !p.eat(tPunct, "}") {
			f, err := p.parseType()
			if err != nil {
				return nil, err
			}
			st.Fields = append(st.Fields, f)
			if !p.eat(tPunct, ",") && !p.at(tPunct, "}") {
				return nil, fmt.Errorf("expected ',' or '}' in struct type")
			}
		}
		base = st
	default:
		return nil, fmt.Errorf("expected type, found %q", t.text)
	}
	for p.eat(tPunct, "*") {
		base = PtrType{Elem: base}
	}
	return base, nil
}

// operand parses a value of the given (already parsed) type.
func (p *parser) operand(ty Type) (Value, error) {
	t := p.tok()
	switch {
	case t.kind == tLocal:
		p.advance()
		return RegV(ty, t.text), nil
	case t.kind == tInt:
		p.advance()
		bits := 64
		if it, ok := ty.(IntType); ok {
			bits = it.Bits
		}
		v := uint64(t.num)
		if bits < 64 {
			v &= (1 << bits) - 1
		}
		return IntV(ty, v), nil
	case t.kind == tGlobal:
		p.advance()
		return GlobalV(ty, t.text, 0), nil
	case t.kind == tWord && (t.text == "getelementptr" || t.text == "bitcast"):
		return p.constExpr(ty)
	case t.kind == tWord && t.text == "true":
		p.advance()
		return IntV(ty, 1), nil
	case t.kind == tWord && t.text == "false":
		p.advance()
		return IntV(ty, 0), nil
	case t.kind == tWord && t.text == "null":
		p.advance()
		return IntV(ty, 0), nil
	}
	return Value{}, fmt.Errorf("expected operand, found %q", t.text)
}

// constExpr parses `getelementptr inbounds (T, T* @g, idx...)` or
// `bitcast (<expr> to T)` and folds it to a global+offset value.
func (p *parser) constExpr(ty Type) (Value, error) {
	switch {
	case p.eat(tWord, "getelementptr"):
		p.eat(tWord, "inbounds")
		if _, err := p.expect(tPunct, "("); err != nil {
			return Value{}, err
		}
		baseTy, err := p.parseType()
		if err != nil {
			return Value{}, err
		}
		if _, err := p.expect(tPunct, ","); err != nil {
			return Value{}, err
		}
		ptrTy, err := p.parseType()
		if err != nil {
			return Value{}, err
		}
		base, err := p.operand(ptrTy)
		if err != nil {
			return Value{}, err
		}
		if base.Kind != VGlobal {
			return Value{}, fmt.Errorf("constant gep base must be a global")
		}
		var idxs []int64
		for p.eat(tPunct, ",") {
			ity, err := p.parseType()
			if err != nil {
				return Value{}, err
			}
			_ = ity
			it := p.tok()
			if it.kind != tInt {
				return Value{}, fmt.Errorf("constant gep index must be an integer")
			}
			p.advance()
			idxs = append(idxs, it.num)
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return Value{}, err
		}
		off, _, err := foldGEP(baseTy, idxs)
		if err != nil {
			return Value{}, err
		}
		return GlobalV(ty, base.Name, base.Off+uint64(off)), nil

	case p.eat(tWord, "bitcast"):
		if _, err := p.expect(tPunct, "("); err != nil {
			return Value{}, err
		}
		innerTy, err := p.parseType()
		if err != nil {
			return Value{}, err
		}
		v, err := p.operand(innerTy)
		if err != nil {
			return Value{}, err
		}
		if _, err := p.expect(tWord, "to"); err != nil {
			return Value{}, err
		}
		toTy, err := p.parseType()
		if err != nil {
			return Value{}, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return Value{}, err
		}
		v.Ty = toTy
		return v, nil
	}
	return Value{}, fmt.Errorf("unsupported constant expression %q", p.tok().text)
}

// foldGEP computes the byte offset of constant indices into baseTy. The
// first index scales by the whole base type; the rest descend into it.
// Returns the offset and the final element type.
func foldGEP(baseTy Type, idxs []int64) (int64, Type, error) {
	if len(idxs) == 0 {
		return 0, baseTy, nil
	}
	off := idxs[0] * int64(SizeOf(baseTy))
	cur := baseTy
	for _, ix := range idxs[1:] {
		switch t := cur.(type) {
		case ArrayType:
			off += ix * int64(SizeOf(t.Elem))
			cur = t.Elem
		case StructType:
			if ix < 0 || int(ix) >= len(t.Fields) {
				return 0, nil, fmt.Errorf("struct gep index %d out of range", ix)
			}
			off += int64(FieldOffset(t, int(ix)))
			cur = t.Fields[int(ix)]
		default:
			return 0, nil, fmt.Errorf("gep descends into non-aggregate %s", cur)
		}
	}
	return off, cur, nil
}

func (p *parser) instr() (*Instr, error) {
	name := ""
	if p.tok().kind == tLocal {
		name = p.tok().text
		p.advance()
		if _, err := p.expect(tPunct, "="); err != nil {
			return nil, err
		}
	}
	op := p.tok()
	if op.kind != tWord {
		return nil, fmt.Errorf("expected opcode, found %q", op.text)
	}
	p.advance()
	switch op.text {
	case "add", "sub", "mul", "udiv", "urem", "sdiv", "srem", "and", "or", "xor", "shl", "lshr", "ashr":
		return p.binop(name, op.text)
	case "icmp":
		return p.icmp(name)
	case "trunc", "zext", "sext", "bitcast", "inttoptr", "ptrtoint":
		return p.cast(name, op.text)
	case "getelementptr":
		return p.gep(name)
	case "load":
		return p.load(name)
	case "store":
		return p.store()
	case "alloca":
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		p.skipAlign()
		return &Instr{Op: OpAlloca, Name: name, Ty: ty}, nil
	case "br":
		return p.br()
	case "ret":
		return p.ret()
	case "call":
		return p.call(name)
	case "phi":
		return p.phi(name)
	case "select":
		return p.sel(name)
	}
	return nil, fmt.Errorf("unsupported opcode %q", op.text)
}

var binOps = map[string]Opcode{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "udiv": OpUDiv, "urem": OpURem,
	"sdiv": OpSDiv, "srem": OpSRem,
	"and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl, "lshr": OpLShr,
	"ashr": OpAShr,
}

func (p *parser) binop(name, opText string) (*Instr, error) {
	in := &Instr{Op: binOps[opText], Name: name}
	if p.eat(tWord, "nsw") {
		in.NSW = true
	}
	p.eat(tWord, "nuw") // accepted, treated as plain wrap-around
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	in.Ty = ty
	a, err := p.operand(ty)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ","); err != nil {
		return nil, err
	}
	b, err := p.operand(ty)
	if err != nil {
		return nil, err
	}
	in.Args = []Value{a, b}
	return in, nil
}

func (p *parser) icmp(name string) (*Instr, error) {
	predTok := p.tok()
	pred, ok := predByName[predTok.text]
	if !ok {
		return nil, fmt.Errorf("unknown icmp predicate %q", predTok.text)
	}
	p.advance()
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	a, err := p.operand(ty)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ","); err != nil {
		return nil, err
	}
	b, err := p.operand(ty)
	if err != nil {
		return nil, err
	}
	return &Instr{Op: OpICmp, Name: name, Ty: ty, Pred: pred, Args: []Value{a, b}}, nil
}

var castOps = map[string]Opcode{
	"trunc": OpTrunc, "zext": OpZExt, "sext": OpSExt, "bitcast": OpBitcast,
	"inttoptr": OpIntToPtr, "ptrtoint": OpPtrToInt,
}

func (p *parser) cast(name, opText string) (*Instr, error) {
	srcTy, err := p.parseType()
	if err != nil {
		return nil, err
	}
	v, err := p.operand(srcTy)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tWord, "to"); err != nil {
		return nil, err
	}
	dstTy, err := p.parseType()
	if err != nil {
		return nil, err
	}
	return &Instr{Op: castOps[opText], Name: name, Ty: dstTy, SrcTy: srcTy, Args: []Value{v}}, nil
}

func (p *parser) gep(name string) (*Instr, error) {
	p.eat(tWord, "inbounds")
	baseTy, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ","); err != nil {
		return nil, err
	}
	ptrTy, err := p.parseType()
	if err != nil {
		return nil, err
	}
	base, err := p.operand(ptrTy)
	if err != nil {
		return nil, err
	}
	in := &Instr{Op: OpGEP, Name: name, SrcTy: baseTy, Args: []Value{base}}
	for p.eat(tPunct, ",") {
		ity, err := p.parseType()
		if err != nil {
			return nil, err
		}
		idx, err := p.operand(ity)
		if err != nil {
			return nil, err
		}
		in.Args = append(in.Args, idx)
	}
	// Result type: pointer to the element the indices reach (computed for
	// constant paths; for symbolic indices the structural walk still
	// determines the element type).
	elem, err := gepElemType(baseTy, len(in.Args)-1)
	if err != nil {
		return nil, err
	}
	in.Ty = PtrType{Elem: elem}
	return in, nil
}

// gepElemType walks n indices into ty structurally (index values do not
// affect the element type in the supported subset: arrays only).
func gepElemType(ty Type, n int) (Type, error) {
	cur := ty
	for i := 1; i < n; i++ {
		switch t := cur.(type) {
		case ArrayType:
			cur = t.Elem
		case StructType:
			return nil, fmt.Errorf("gep into struct requires constant indices (use constant-expression form)")
		default:
			return nil, fmt.Errorf("gep descends into non-aggregate %s", cur)
		}
	}
	return cur, nil
}

func (p *parser) load(name string) (*Instr, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ","); err != nil {
		return nil, err
	}
	pty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	ptr, err := p.operand(pty)
	if err != nil {
		return nil, err
	}
	p.skipAlign()
	return &Instr{Op: OpLoad, Name: name, Ty: ty, Args: []Value{ptr}}, nil
}

func (p *parser) store() (*Instr, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	v, err := p.operand(ty)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ","); err != nil {
		return nil, err
	}
	pty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	ptr, err := p.operand(pty)
	if err != nil {
		return nil, err
	}
	p.skipAlign()
	return &Instr{Op: OpStore, Ty: ty, Args: []Value{v, ptr}}, nil
}

func (p *parser) br() (*Instr, error) {
	if p.eat(tWord, "label") {
		lbl, err := p.expect(tLocal, "")
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpBr, Labels: []string{lbl.text}}, nil
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	cond, err := p.operand(ty)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ","); err != nil {
		return nil, err
	}
	if _, err := p.expect(tWord, "label"); err != nil {
		return nil, err
	}
	l1, err := p.expect(tLocal, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ","); err != nil {
		return nil, err
	}
	if _, err := p.expect(tWord, "label"); err != nil {
		return nil, err
	}
	l2, err := p.expect(tLocal, "")
	if err != nil {
		return nil, err
	}
	return &Instr{Op: OpCondBr, Ty: ty, Args: []Value{cond}, Labels: []string{l1.text, l2.text}}, nil
}

func (p *parser) ret() (*Instr, error) {
	if p.eat(tWord, "void") {
		return &Instr{Op: OpRet, Ty: VoidType{}}, nil
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	v, err := p.operand(ty)
	if err != nil {
		return nil, err
	}
	return &Instr{Op: OpRet, Ty: ty, Args: []Value{v}}, nil
}

func (p *parser) call(name string) (*Instr, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	callee, err := p.expect(tGlobal, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	in := &Instr{Op: OpCall, Name: name, Ty: ty, Callee: callee.text}
	for !p.eat(tPunct, ")") {
		aty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		a, err := p.operand(aty)
		if err != nil {
			return nil, err
		}
		in.Args = append(in.Args, a)
		if !p.eat(tPunct, ",") && !p.at(tPunct, ")") {
			return nil, fmt.Errorf("expected ',' or ')' in call arguments")
		}
	}
	return in, nil
}

func (p *parser) phi(name string) (*Instr, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	in := &Instr{Op: OpPhi, Name: name, Ty: ty}
	for {
		if _, err := p.expect(tPunct, "["); err != nil {
			return nil, err
		}
		v, err := p.operand(ty)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ","); err != nil {
			return nil, err
		}
		pred, err := p.expect(tLocal, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, "]"); err != nil {
			return nil, err
		}
		in.Incoming = append(in.Incoming, PhiIn{Val: v, Pred: pred.text})
		if !p.eat(tPunct, ",") {
			return in, nil
		}
	}
}

func (p *parser) sel(name string) (*Instr, error) {
	cty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	cond, err := p.operand(cty)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ","); err != nil {
		return nil, err
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	a, err := p.operand(ty)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ","); err != nil {
		return nil, err
	}
	ty2, err := p.parseType()
	if err != nil {
		return nil, err
	}
	b, err := p.operand(ty2)
	if err != nil {
		return nil, err
	}
	return &Instr{Op: OpSelect, Name: name, Ty: ty, Args: []Value{cond, a, b}}, nil
}
