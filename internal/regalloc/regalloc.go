// Package regalloc implements a spill-everything register allocator for
// Virtual x86 — the paper's "ongoing work" (§1): validating the register
// allocation phase with the same unchanged KEQ checker, this time with the
// SAME language on both sides of the equivalence.
//
// The allocator assigns every virtual register a frame slot (the Machine
// IR FrameIndex abstraction, modeled by vx86's spill/reload pseudo-ops),
// rewrites every use into a reload into a scratch register and every
// definition into a spill, and eliminates PHIs with the standard two-phase
// parallel-copy lowering through per-phi temporary slots. This is the
// shape of LLVM's -O0 RegAllocFast.
//
// Unlike the paper's register-allocation VC generator (which treats the
// allocator as a black box and infers the correspondence), the generator
// here uses the allocator's vreg→slot hint — the same trade-off the ISel
// prototype makes (§4.5: transparency for accuracy).
package regalloc

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/vx86"
)

// Options controls the allocator.
type Options struct {
	// BugClobberScratch reloads both operands of a binary operation into
	// the SAME scratch register, clobbering the first — a classic
	// register-allocator bug for KEQ to catch.
	BugClobberScratch bool
}

// Result is the allocated function plus the slot-assignment hint.
type Result struct {
	Fn *vx86.Function
	// SlotOf maps a virtual register name ("vr3") to its frame slot name.
	SlotOf map[string]string
}

const (
	scratchA = "r10"
	scratchB = "r11"
)

// Allocate rewrites f into an equivalent function without virtual
// registers or PHIs.
func Allocate(f *vx86.Function, opts Options) (*Result, error) {
	widths := vx86.RegWidths(f)
	slotOf := make(map[string]string, len(widths))
	for v := range widths {
		slotOf[v] = "s." + v
	}
	a := &allocator{in: f, opts: opts, widths: widths, slotOf: slotOf}
	out, err := a.run()
	if err != nil {
		return nil, err
	}
	return &Result{Fn: out, SlotOf: slotOf}, nil
}

type allocator struct {
	in     *vx86.Function
	opts   Options
	widths map[string]uint8
	slotOf map[string]string
	out    []*vx86.Instr
}

func (a *allocator) emit(in *vx86.Instr) { a.out = append(a.out, in) }

func scratch(base string, w uint8) vx86.Reg { return vx86.Reg{Name: base, Width: w} }

// reload brings an operand into the given scratch register and returns the
// rewritten operand. Immediates and physical registers pass through.
func (a *allocator) reload(o vx86.Operand, base string) (vx86.Operand, error) {
	if o.Kind != vx86.OReg || !o.Reg.Virtual {
		return o, nil
	}
	slot, ok := a.slotOf[o.Reg.Name]
	if !ok {
		return o, fmt.Errorf("regalloc: unassigned register %s", o.Reg)
	}
	dst := scratch(base, o.Reg.Width)
	a.emit(&vx86.Instr{Op: vx86.OpReload, Dst: dst, HasDst: true, Slot: slot})
	return vx86.RegOp(dst), nil
}

// spillDst returns the scratch register standing in for a virtual
// destination plus a deferred spill; physical destinations pass through.
func (a *allocator) spillDst(dst vx86.Reg, base string) (vx86.Reg, *vx86.Instr) {
	if !dst.Virtual {
		return dst, nil
	}
	sc := scratch(base, dst.Width)
	return sc, &vx86.Instr{Op: vx86.OpSpill, Slot: a.slotOf[dst.Name],
		Srcs: []vx86.Operand{vx86.RegOp(sc)}}
}

func (a *allocator) run() (*vx86.Function, error) {
	out := &vx86.Function{Name: a.in.Name}
	preds := cfg.Preds(vx86.FuncGraph{F: a.in})

	for _, b := range a.in.Blocks {
		a.out = nil
		for _, in := range b.Instrs {
			if in.Op == vx86.OpPhi {
				continue // eliminated via predecessor edge copies below
			}
			if err := a.rewrite(in); err != nil {
				return nil, fmt.Errorf("regalloc: block %s: %w", b.Name, err)
			}
		}
		out.Blocks = append(out.Blocks, &vx86.Block{Name: b.Name, Instrs: a.out})
	}

	// PHI elimination: two-phase parallel copies in each predecessor.
	for _, b := range a.in.Blocks {
		var phis []*vx86.Instr
		for _, in := range b.Instrs {
			if in.Op == vx86.OpPhi {
				phis = append(phis, in)
			}
		}
		if len(phis) == 0 {
			continue
		}
		for _, p := range preds[b.Name] {
			pb := out.BlockByName(p)
			if pb == nil {
				return nil, fmt.Errorf("regalloc: missing predecessor block %s", p)
			}
			copies, err := a.phiCopies(b.Name, phis, p)
			if err != nil {
				return nil, err
			}
			insertBeforeTerminator(pb, copies)
		}
	}
	return out, nil
}

// phiCopies builds the copy sequence executed on the edge pred→block:
// phase 1 reads every incoming value into a temp slot, phase 2 moves the
// temps into the destination slots (parallel-copy semantics, immune to
// the swap problem).
func (a *allocator) phiCopies(block string, phis []*vx86.Instr, pred string) ([]*vx86.Instr, error) {
	saved := a.out
	a.out = nil
	defer func() { a.out = saved }()

	type pending struct {
		temp string
		dst  string
		w    uint8
	}
	var moves []pending
	for i, phi := range phis {
		var val vx86.Operand
		found := false
		for _, inc := range phi.Phi {
			if inc.Pred == pred {
				val = inc.Val
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("regalloc: phi %s lacks incoming for %s", phi.Dst, pred)
		}
		temp := fmt.Sprintf("t.%s.%d", block, i)
		w := phi.Dst.Width
		sc := scratch(scratchA, w)
		switch {
		case val.Kind == vx86.OImm:
			a.emit(&vx86.Instr{Op: vx86.OpMov, Dst: sc, HasDst: true,
				Srcs: []vx86.Operand{val}})
		case val.Reg.Virtual:
			a.emit(&vx86.Instr{Op: vx86.OpReload, Dst: sc, HasDst: true,
				Slot: a.slotOf[val.Reg.Name]})
		default:
			a.emit(&vx86.Instr{Op: vx86.OpCopy, Dst: sc, HasDst: true,
				Srcs: []vx86.Operand{val}})
		}
		a.emit(&vx86.Instr{Op: vx86.OpSpill, Slot: temp, Srcs: []vx86.Operand{vx86.RegOp(sc)}})
		moves = append(moves, pending{temp: temp, dst: a.slotOf[phi.Dst.Name], w: w})
	}
	for _, m := range moves {
		sc := scratch(scratchA, m.w)
		a.emit(&vx86.Instr{Op: vx86.OpReload, Dst: sc, HasDst: true, Slot: m.temp})
		a.emit(&vx86.Instr{Op: vx86.OpSpill, Slot: m.dst, Srcs: []vx86.Operand{vx86.RegOp(sc)}})
	}
	return a.out, nil
}

// insertBeforeTerminator places copies before the block's trailing
// control-transfer cluster. Two safety arguments: (1) spill/reload/mov/
// copy do not touch eflags, so inserting between a flag-setting compare
// and its jcc is fine; (2) when the block ends in jcc+jmp, the copies run
// on BOTH outgoing edges, but writing a phi destination slot early is
// harmless — by SSA dominance the slot is only ever read after the phi's
// block, and every edge into that block rewrites it.
func insertBeforeTerminator(b *vx86.Block, copies []*vx86.Instr) {
	pos := len(b.Instrs)
	for i, in := range b.Instrs {
		if in.Op == vx86.OpJcc || in.Op == vx86.OpJmp || in.Op == vx86.OpRet {
			pos = i
			break
		}
	}
	rest := append([]*vx86.Instr(nil), b.Instrs[pos:]...)
	b.Instrs = append(b.Instrs[:pos:pos], append(copies, rest...)...)
}

// rewrite lowers one instruction, reloading virtual sources and spilling
// virtual destinations.
func (a *allocator) rewrite(in *vx86.Instr) error {
	n := *in // shallow copy; operand slices are rebuilt below
	n.Srcs = append([]vx86.Operand(nil), in.Srcs...)

	secondScratch := scratchB
	if a.opts.BugClobberScratch {
		secondScratch = scratchA // clobbers the first operand
	}

	// Address base.
	if in.Addr != nil && in.Addr.Base != nil && in.Addr.Base.Virtual {
		op, err := a.reload(vx86.RegOp(*in.Addr.Base), scratchB)
		if err != nil {
			return err
		}
		addr := *in.Addr
		addr.Base = &op.Reg
		n.Addr = &addr
	}

	for i := range n.Srcs {
		base := scratchA
		if i == 1 {
			base = secondScratch
		}
		// Keep the address scratch (B) free for the base register when an
		// address is present: sources then use A only; instructions with
		// an address have at most one register source.
		if n.Addr != nil {
			base = scratchA
		}
		op, err := a.reload(n.Srcs[i], base)
		if err != nil {
			return err
		}
		n.Srcs[i] = op
	}

	var deferred *vx86.Instr
	if n.HasDst && n.Dst.Virtual {
		sc, spill := a.spillDst(n.Dst, scratchA)
		n.Dst = sc
		deferred = spill
	}
	a.emit(&n)
	if deferred != nil {
		a.emit(deferred)
	}
	return nil
}

// SyncPoints builds the synchronization relation for one allocation
// instance: function entry (argument registers), every loop head (live
// virtual registers against their slots), call sites, and exit.
func SyncPoints(before *vx86.Function, res *Result) ([]*core.SyncPoint, error) {
	g := vx86.FuncGraph{F: before}
	widths := vx86.RegWidths(before)
	live := cfg.Liveness(g)
	preds := cfg.Preds(g)

	slotObs := func(v string) string {
		return fmt.Sprintf("!%s_%d", res.SlotOf[v], widths[v])
	}
	vregObs := func(v string) string {
		return fmt.Sprintf("%%%s_%d", v, widths[v])
	}

	// Argument registers written before being read in the entry block —
	// the ones the calling convention provides.
	entryCons := []core.Constraint{}
	for _, r := range argRegsRead(before) {
		entryCons = append(entryCons, core.Constraint{Left: r, Right: r})
	}
	points := []*core.SyncPoint{
		{ID: "p0", LocLeft: "entry", LocRight: "entry", Constraints: entryCons, MemEqual: true},
	}

	exitCons := []core.Constraint{}
	if w := raxWriteWidth(before); w > 0 {
		name := vx86.PhysName("rax", w)
		exitCons = append(exitCons, core.Constraint{Left: name, Right: name})
	}
	points = append(points, &core.SyncPoint{
		ID: "pexit", LocLeft: "exit", LocRight: "exit",
		Constraints: exitCons, MemEqual: true, Exiting: true,
	})

	for _, loop := range cfg.NaturalLoops(g) {
		h := loop.Header
		hb := before.BlockByName(h)
		for _, p := range preds[h] {
			var cons []core.Constraint
			// The allocated side has already executed the phi copies on
			// this edge (phi elimination), while the pre-allocation side
			// sits before its PHIs. Relate each phi's INCOMING value to
			// the destination slot.
			for _, in := range hb.Instrs {
				if in.Op != vx86.OpPhi {
					break
				}
				for _, inc := range in.Phi {
					if inc.Pred != p {
						continue
					}
					dst := slotObs(in.Dst.Name)
					if inc.Val.Kind == vx86.OImm {
						cons = append(cons, core.Constraint{
							Left: fmt.Sprintf("%d", inc.Val.Imm), Right: dst})
					} else if inc.Val.Reg.Virtual {
						cons = append(cons, core.Constraint{
							Left: vregObs(inc.Val.Reg.Name), Right: dst})
					}
				}
			}
			// Loop-invariant live registers map to their own slots.
			for _, v := range cfg.SortedKeys(live[h]) {
				cons = append(cons, core.Constraint{Left: vregObs(v), Right: slotObs(v)})
			}
			loc := core.Location(fmt.Sprintf("block:%s:from:%s", h, p))
			points = append(points, &core.SyncPoint{
				ID:          fmt.Sprintf("p_%s_from_%s", h, p),
				LocLeft:     loc,
				LocRight:    loc,
				Constraints: cons,
				MemEqual:    true,
			})
		}
	}

	for k, site := range vx86.CallSites(before) {
		loc := core.Location(fmt.Sprintf("call:%s:%d:before", site.Callee, k))
		var argCons []core.Constraint
		for _, r := range argRegsWrittenBefore(before, site) {
			argCons = append(argCons, core.Constraint{Left: r, Right: r})
		}
		points = append(points, &core.SyncPoint{
			ID: fmt.Sprintf("p_call%d_before", k), LocLeft: loc, LocRight: loc,
			Constraints: argCons, MemEqual: true, Exiting: true,
		})
		locA := core.Location(fmt.Sprintf("call:%s:%d:after", site.Callee, k))
		cons := []core.Constraint{{Left: "rax", Right: "rax"}}
		for _, v := range cfg.SortedKeys(liveAfterCall(before, site, live)) {
			cons = append(cons, core.Constraint{Left: vregObs(v), Right: slotObs(v)})
		}
		points = append(points, &core.SyncPoint{
			ID: fmt.Sprintf("p_call%d_after", k), LocLeft: locA, LocRight: locA,
			Constraints: cons, MemEqual: true,
		})
	}
	core.SortPoints(points)
	return points, nil
}

func unionSets(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// argRegsRead lists argument-register views read anywhere in f (assembly
// names, deterministic order).
func argRegsRead(f *vx86.Function) []string {
	seen := map[string]bool{}
	var out []string
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, o := range in.Srcs {
				if o.Kind == vx86.OReg && !o.Reg.Virtual && isArgBase(o.Reg.Name) {
					name := vx86.PhysName(o.Reg.Name, o.Reg.Width)
					if !seen[name] {
						seen[name] = true
						out = append(out, name)
					}
				}
			}
		}
	}
	return out
}

func isArgBase(base string) bool {
	for _, r := range vx86.ArgRegs {
		if r == base {
			return true
		}
	}
	return false
}

// raxWriteWidth returns the widest rax view written in f (0 when never
// written — void functions have no return-value constraint).
func raxWriteWidth(f *vx86.Function) uint8 {
	w := uint8(0)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasDst && !in.Dst.Virtual && in.Dst.Name == "rax" && in.Dst.Width > w {
				w = in.Dst.Width
			}
		}
	}
	return w
}

// argRegsWrittenBefore lists the argument registers set up by the copies
// preceding a call site (the call's arity, recovered statically).
func argRegsWrittenBefore(f *vx86.Function, site vx86.CallSite) []string {
	b := f.BlockByName(site.Block)
	var out []string
	for i := site.Index - 1; i >= 0; i-- {
		in := b.Instrs[i]
		if in.Op == vx86.OpCopy && in.HasDst && !in.Dst.Virtual && isArgBase(in.Dst.Name) {
			out = append(out, vx86.PhysName(in.Dst.Name, in.Dst.Width))
			continue
		}
		break
	}
	return out
}

// liveAfterCall computes the virtual registers live right after a call.
func liveAfterCall(f *vx86.Function, site vx86.CallSite, liveIn map[string]map[string]bool) map[string]bool {
	g := vx86.FuncGraph{F: f}
	b := f.BlockByName(site.Block)
	liveSet := cfg.LiveOut(g, liveIn, site.Block)
	for i := len(b.Instrs) - 1; i > site.Index; i-- {
		in := b.Instrs[i]
		if in.HasDst && in.Dst.Virtual {
			delete(liveSet, in.Dst.Name)
		}
		for _, o := range in.Srcs {
			if o.Kind == vx86.OReg && o.Reg.Virtual {
				liveSet[o.Reg.Name] = true
			}
		}
		if in.Addr != nil && in.Addr.Base != nil && in.Addr.Base.Virtual {
			liveSet[in.Addr.Base.Name] = true
		}
	}
	return liveSet
}
