package regalloc

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/mem"
	"repro/internal/paperprogs"
	"repro/internal/smt"
	"repro/internal/vx86"
)

// compileISel produces the pre-allocation Virtual x86 for an LLVM source.
func compileISel(t *testing.T, src, fn string) (*llvmir.Module, *vx86.Function) {
	t.Helper()
	mod, err := llvmir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := isel.Compile(mod, mod.Func(fn), isel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return mod, res.Fn
}

func TestAllocateRemovesVirtualRegisters(t *testing.T) {
	_, before := compileISel(t, paperprogs.ArithmSeqSum, "arithm_seq_sum")
	res, err := Allocate(before, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == vx86.OpPhi {
				t.Fatalf("PHI survived allocation: %v", in)
			}
			if in.HasDst && in.Dst.Virtual {
				t.Fatalf("virtual destination survived: %v", in)
			}
			for _, o := range in.Srcs {
				if o.Kind == vx86.OReg && o.Reg.Virtual {
					t.Fatalf("virtual source survived: %v", in)
				}
			}
		}
	}
	// Output must round-trip through the parser.
	text := (&vx86.Program{Funcs: []*vx86.Function{res.Fn}}).String()
	if _, err := vx86.Parse(text); err != nil {
		t.Fatalf("allocated output does not parse: %v\n%s", err, text)
	}
}

// TestAllocateBehaviorPreserved differentially tests before/after on the
// concrete interpreter.
func TestAllocateBehaviorPreserved(t *testing.T) {
	_, before := compileISel(t, paperprogs.ArithmSeqSum, "arithm_seq_sum")
	res, err := Allocate(before, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a0, d uint32, n uint8) bool {
		run := func(fn *vx86.Function) (uint64, error) {
			layout := mem.NewLayout()
			in := vx86.NewInterp(&vx86.Program{Funcs: []*vx86.Function{fn}},
				layout, mem.NewConcrete(layout))
			return in.CallWithArgs("arithm_seq_sum",
				[]uint64{uint64(a0), uint64(d), uint64(n % 30)}, []uint8{32, 32, 32})
		}
		want, err1 := run(before)
		got, err2 := run(res.Fn)
		return err1 == nil && err2 == nil && uint32(want) == uint32(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBuggyAllocatorMiscompiles(t *testing.T) {
	_, before := compileISel(t, paperprogs.ArithmSeqSum, "arithm_seq_sum")
	res, err := Allocate(before, Options{BugClobberScratch: true})
	if err != nil {
		t.Fatal(err)
	}
	layout := mem.NewLayout()
	in := vx86.NewInterp(&vx86.Program{Funcs: []*vx86.Function{res.Fn}},
		layout, mem.NewConcrete(layout))
	got, err := in.CallWithArgs("arithm_seq_sum", []uint64{2, 3, 4}, []uint8{32, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if uint32(got) == 26 {
		t.Fatalf("clobber bug produced the correct answer; bad test setup")
	}
}

// validate runs KEQ on a before/after allocation pair — the same language
// on both sides, the same checker as everywhere else.
func validate(t *testing.T, mod *llvmir.Module, fnName string, before *vx86.Function, opts Options) *core.Report {
	t.Helper()
	res, err := Allocate(before, opts)
	if err != nil {
		t.Fatal(err)
	}
	points, err := SyncPoints(before, res)
	if err != nil {
		t.Fatal(err)
	}
	ctx := smt.NewContext()
	solver := smt.NewSolver(ctx)
	layout := llvmir.BuildLayout(mod, mod.Func(fnName))
	left := vx86.NewSem(ctx, before, layout)
	right := vx86.NewSem(ctx, res.Fn, layout)
	ck := core.NewChecker(solver, left, right, core.Options{})
	rep, err := ck.Run(points)
	if err != nil {
		t.Fatalf("checker: %v", err)
	}
	return rep
}

func TestKEQValidatesAllocation(t *testing.T) {
	for _, tc := range []struct{ src, fn string }{
		{paperprogs.ArithmSeqSum, "arithm_seq_sum"},
		{paperprogs.MemSwap, "mem_swap"},
		{paperprogs.AllocaExample, "alloca_example"},
		{paperprogs.CallExample, "call_example"},
	} {
		mod, before := compileISel(t, tc.src, tc.fn)
		rep := validate(t, mod, tc.fn, before, Options{})
		if rep.Verdict != core.Validated {
			t.Errorf("%s: %v, failures: %v", tc.fn, rep.Verdict, rep.Failures)
		}
	}
}

func TestKEQCatchesClobberBug(t *testing.T) {
	mod, before := compileISel(t, paperprogs.ArithmSeqSum, "arithm_seq_sum")
	rep := validate(t, mod, "arithm_seq_sum", before, Options{BugClobberScratch: true})
	if rep.Verdict != core.NotValidated {
		t.Fatalf("clobber bug validated")
	}
}

func TestSlotObservables(t *testing.T) {
	_, before := compileISel(t, paperprogs.ArithmSeqSum, "arithm_seq_sum")
	res, err := Allocate(before, Options{})
	if err != nil {
		t.Fatal(err)
	}
	points, err := SyncPoints(before, res)
	if err != nil {
		t.Fatal(err)
	}
	// Loop-header points must relate vregs to slot observables.
	found := false
	for _, p := range points {
		for _, c := range p.Constraints {
			if len(c.Right) > 0 && c.Right[0] == '!' {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no slot observables in sync points: %v", points)
	}
}
