package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// histBuckets is the number of log2 buckets: bucket i holds durations
// whose nanosecond count has bit length i, i.e. [2^(i-1), 2^i). 64
// buckets cover everything a time.Duration can express.
const histBuckets = 64

// Histogram is a log-scale latency histogram. It is mergeable (Merge)
// and exact in Count/Sum/Min/Max; quantiles are bucket-resolution
// approximations (within 2x). Histogram itself is not goroutine-safe;
// Metrics serializes access.
type Histogram struct {
	Count   int64
	Sum     int64 // total nanoseconds
	Min     int64 // ns; valid when Count > 0
	Max     int64 // ns
	buckets [histBuckets]int64
}

func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return bits.Len64(uint64(ns))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if h.Count == 0 || ns < h.Min {
		h.Min = ns
	}
	if ns > h.Max {
		h.Max = ns
	}
	h.Count++
	h.Sum += ns
	h.buckets[bucketOf(ns)]++
}

// Merge folds o into h. Merging shards recorded independently yields
// exactly the histogram a single-shard run would have produced.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Mean returns the exact mean observation.
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.Sum / h.Count)
}

// Quantile returns an upper bound for the p-quantile (0 < p <= 1) at
// bucket resolution: the upper edge of the bucket containing it, clamped
// to Max.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			hi := int64(1) << i // upper edge of bucket i
			if hi > h.Max || i == 0 {
				hi = h.Max
			}
			return time.Duration(hi)
		}
	}
	return time.Duration(h.Max)
}

// HistBucket is one rendered histogram bucket.
type HistBucket struct {
	Lo, Hi time.Duration // [Lo, Hi)
	Count  int64
}

// Buckets returns the contiguous bucket range between the first and last
// non-empty bucket (nil when the histogram is empty).
func (h *Histogram) Buckets() []HistBucket {
	if h.Count == 0 {
		return nil
	}
	lo, hi := -1, -1
	for i, c := range h.buckets {
		if c != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	out := make([]HistBucket, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		var b HistBucket
		if i > 0 {
			b.Lo = time.Duration(int64(1) << (i - 1))
		}
		b.Hi = time.Duration(int64(1) << i)
		b.Count = h.buckets[i]
		out = append(out, b)
	}
	return out
}

// Metrics is a registry of named counters and histograms. A nil *Metrics
// drops everything, so instrumented code can carry one unconditionally.
// All methods are goroutine-safe, but the intended pattern is one private
// registry per worker, merged by the aggregator.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// Add increments counter name by n. No-op on nil.
func (m *Metrics) Add(name string, n int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += n
	m.mu.Unlock()
}

// Observe records d into histogram name. No-op on nil.
func (m *Metrics) Observe(name string, d time.Duration) {
	m.ObserveVal(name, d.Nanoseconds())
}

// ObserveVal records a raw int64 observation into histogram name — the
// unit-agnostic entry point behind Observe, used directly for byte
// counts (the mem.* series record allocation deltas, not durations).
// No-op on nil.
func (m *Metrics) ObserveVal(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	h.Observe(time.Duration(v))
	m.mu.Unlock()
}

// Counter returns the value of counter name (0 when absent or m is nil).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Hist returns a copy of histogram name (zero histogram when absent or m
// is nil), safe to read without further locking.
func (m *Metrics) Hist(name string) Histogram {
	if m == nil {
		return Histogram{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.hists[name]; h != nil {
		return *h
	}
	return Histogram{}
}

// Snapshot returns copies of the registry contents: all counters and
// all histograms by name. Nil-safe (a nil registry snapshots to nil
// maps); mutating the returned maps does not affect the registry.
func (m *Metrics) Snapshot() (map[string]int64, map[string]Histogram) {
	if m == nil {
		return nil, nil
	}
	return m.snapshot()
}

// snapshot returns copies of the registry contents.
func (m *Metrics) snapshot() (map[string]int64, map[string]Histogram) {
	m.mu.Lock()
	defer m.mu.Unlock()
	counters := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	hists := make(map[string]Histogram, len(m.hists))
	for k, h := range m.hists {
		hists[k] = *h
	}
	return counters, hists
}

// Merge folds o into m. Either side may be nil. o must not be receiving
// observations concurrently with the merge.
func (m *Metrics) Merge(o *Metrics) {
	if m == nil || o == nil {
		return
	}
	counters, hists := o.snapshot()
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range counters {
		m.counters[k] += v
	}
	for k, oh := range hists {
		h := m.hists[k]
		if h == nil {
			h = &Histogram{}
			m.hists[k] = h
		}
		h.Merge(&oh)
	}
}
