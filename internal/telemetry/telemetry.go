// Package telemetry is the observability substrate of the validation
// pipeline: a tracing layer recording one span per pipeline phase (parse,
// ISel, VC generation, per-sync-point checking, every SMT query) and a
// metrics registry of counters and log-scale latency histograms.
//
// Both halves are built for the harness's worker pool:
//
//   - The Tracer is lock-cheap — starting a span is one atomic increment
//     and an allocation; only ending a span takes the tracer mutex, for a
//     single slice append. Spans from any number of goroutines interleave
//     safely.
//   - Metrics registries are mergeable: each worker records into a private
//     registry and the harness folds them together, so the hot path never
//     contends on a shared map.
//   - Everything is nil-safe. A nil *Tracer returns nil *Spans whose
//     methods are no-ops, and a nil *Metrics drops observations, so
//     instrumented code pays only a nil check when telemetry is off.
//
// The package depends on the standard library only and imports nothing
// from this repository, so every layer (sat, smt, core, isel, vcgen, tv,
// harness) can use it without cycles.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one Tracer. 0 means "no span" and is
// the parent of root spans.
type SpanID uint64

// Attr is one key/value annotation on a span. Values should be strings,
// bools, or integer/float types so the JSONL encoding stays portable.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Record is one finished span as it appears in the JSONL trace: offsets
// are nanoseconds since the tracer's epoch (its creation time), so spans
// from all workers share a single monotonic timeline.
type Record struct {
	ID      SpanID         `json:"id"`
	Parent  SpanID         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_ns"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// End returns the span's end offset in nanoseconds since the epoch.
func (r Record) End() int64 { return r.StartNS + r.DurNS }

// Tracer collects spans. The zero value is not usable; a nil Tracer is
// the disabled tracer (all operations are no-ops). Create with NewTracer.
type Tracer struct {
	epoch  time.Time
	nextID atomic.Uint64

	mu      sync.Mutex
	records []Record
}

// NewTracer returns an empty tracer whose epoch is now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is an in-flight span. It is owned by the goroutine that started it
// until End; a nil Span (from a nil Tracer) ignores all operations.
type Span struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  time.Duration // offset from t.epoch
	attrs  []Attr
}

// Start begins a span under parent (0 for a root span). On a nil tracer
// it returns nil, which every Span method tolerates — the disabled path
// costs exactly one nil check per call site.
func (t *Tracer) Start(parent SpanID, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t:      t,
		id:     SpanID(t.nextID.Add(1)),
		parent: parent,
		name:   name,
		start:  time.Since(t.epoch),
		attrs:  attrs,
	}
}

// ID returns the span's identifier (0 for a nil span), used to parent
// child spans.
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr annotates the span. No-op on nil.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span and publishes its record to the tracer. No-op on
// nil. End must be called at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Since(s.t.epoch)
	rec := Record{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNS: s.start.Nanoseconds(),
		DurNS:   (end - s.start).Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	s.t.mu.Lock()
	s.t.records = append(s.t.records, rec)
	s.t.mu.Unlock()
}

// Len reports the number of finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.records)
}

// Records returns a copy of the finished spans in End order (children
// before their parents).
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, len(t.records))
	copy(out, t.records)
	return out
}

// WriteJSONL writes one JSON object per finished span.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range t.Records() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL. Blank lines are
// ignored; any other malformed line is an error.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Lint validates a span set: IDs must be unique and non-zero, every
// non-zero parent must exist, and every child's interval must lie within
// its parent's. It returns the first violation found (spans are checked
// in ascending start order for a deterministic report).
func Lint(records []Record) error {
	byID := make(map[SpanID]Record, len(records))
	for _, r := range records {
		if r.ID == 0 {
			return fmt.Errorf("telemetry: span %q has id 0", r.Name)
		}
		if r.DurNS < 0 {
			return fmt.Errorf("telemetry: span %d (%s) has negative duration %d", r.ID, r.Name, r.DurNS)
		}
		if prev, dup := byID[r.ID]; dup {
			return fmt.Errorf("telemetry: duplicate span id %d (%s and %s)", r.ID, prev.Name, r.Name)
		}
		byID[r.ID] = r
	}
	sorted := make([]Record, len(records))
	copy(sorted, records)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].StartNS < sorted[j].StartNS })
	for _, r := range sorted {
		if r.Parent == 0 {
			continue
		}
		p, ok := byID[r.Parent]
		if !ok {
			return fmt.Errorf("telemetry: span %d (%s) references missing parent %d", r.ID, r.Name, r.Parent)
		}
		if r.StartNS < p.StartNS || r.End() > p.End() {
			return fmt.Errorf("telemetry: span %d (%s) [%d,%d] escapes parent %d (%s) [%d,%d]",
				r.ID, r.Name, r.StartNS, r.End(), p.ID, p.Name, p.StartNS, p.End())
		}
	}
	return nil
}
