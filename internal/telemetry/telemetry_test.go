package telemetry

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTracerIsFreeAndSafe: the disabled path must tolerate every
// operation on nil receivers — this is the zero-overhead contract the
// pipeline instrumentation relies on.
func TestNilTracerIsFreeAndSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(0, "x", String("k", "v"))
	if sp != nil {
		t.Fatalf("nil tracer returned a non-nil span")
	}
	sp.SetAttr("a", 1)
	sp.End()
	if sp.ID() != 0 {
		t.Fatalf("nil span ID = %d, want 0", sp.ID())
	}
	if tr.Len() != 0 || tr.Records() != nil {
		t.Fatalf("nil tracer holds records")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}

	var m *Metrics
	m.Add("c", 1)
	m.Observe("h", time.Second)
	m.Merge(NewMetrics())
	NewMetrics().Merge(m)
	if m.Counter("c") != 0 || m.Hist("h").Count != 0 {
		t.Fatalf("nil metrics recorded something")
	}
}

// TestSpanNestingRoundTrip: spans written as JSONL parse back identically
// and pass Lint.
func TestSpanNestingRoundTrip(t *testing.T) {
	tr := NewTracer()
	root := tr.Start(0, "root", String("fn", "f1"))
	child := tr.Start(root.ID(), "child")
	grand := tr.Start(child.ID(), "grand", Int("n", 3), Bool("ok", true))
	grand.End()
	child.SetAttr("result", "unsat")
	child.End()
	root.End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if err := Lint(recs); err != nil {
		t.Fatalf("Lint: %v", err)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("parsed %d records, want 3", len(back))
	}
	if err := Lint(back); err != nil {
		t.Fatalf("Lint after round trip: %v", err)
	}
	// End order is children first; the root arrives last.
	if back[2].Name != "root" || back[0].Name != "grand" {
		t.Fatalf("unexpected record order: %s, %s, %s", back[0].Name, back[1].Name, back[2].Name)
	}
	if back[1].Attrs["result"] != "unsat" {
		t.Fatalf("child attrs lost: %v", back[1].Attrs)
	}
}

// TestLintRejections: broken traces are caught.
func TestLintRejections(t *testing.T) {
	cases := []struct {
		name string
		recs []Record
		want string
	}{
		{"missing parent", []Record{{ID: 2, Parent: 1, Name: "x", StartNS: 0, DurNS: 5}}, "missing parent"},
		{"duplicate id", []Record{{ID: 1, Name: "a"}, {ID: 1, Name: "b"}}, "duplicate"},
		{"zero id", []Record{{ID: 0, Name: "a"}}, "id 0"},
		{"escapes parent", []Record{
			{ID: 1, Name: "p", StartNS: 100, DurNS: 50},
			{ID: 2, Parent: 1, Name: "c", StartNS: 120, DurNS: 100},
		}, "escapes"},
	}
	for _, c := range cases {
		err := Lint(c.recs)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Lint = %v, want error containing %q", c.name, err, c.want)
		}
	}
	ok := []Record{
		{ID: 1, Name: "p", StartNS: 100, DurNS: 50},
		{ID: 2, Parent: 1, Name: "c", StartNS: 120, DurNS: 20},
	}
	if err := Lint(ok); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

// TestTracerConcurrent exercises the tracer from many goroutines under
// the race detector: concurrent Start/End with parent/child edges across
// goroutines must be safe and lose nothing.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				root := tr.Start(0, "worker")
				child := tr.Start(root.ID(), "task", Int("i", int64(i)))
				child.End()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	recs := tr.Records()
	if len(recs) != workers*per*2 {
		t.Fatalf("got %d records, want %d", len(recs), workers*per*2)
	}
	if err := Lint(recs); err != nil {
		t.Fatalf("Lint: %v", err)
	}
}

// TestHistogramMergeProperty: merging shards must equal the single-shard
// histogram, for any split — the property the harness's per-worker
// registries rely on.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	single := &Histogram{}
	shards := [4]*Histogram{{}, {}, {}, {}}
	for i := 0; i < 10_000; i++ {
		// Span seven orders of magnitude, like real query latencies.
		d := time.Duration(rng.Int63n(int64(10 * time.Second)))
		single.Observe(d)
		shards[rng.Intn(4)].Observe(d)
	}
	merged := &Histogram{}
	for _, s := range shards {
		merged.Merge(s)
	}
	if !reflect.DeepEqual(single, merged) {
		t.Fatalf("merged shards != single histogram:\nsingle %+v\nmerged %+v", single, merged)
	}
}

// TestMetricsMergeProperty: the same property at the registry level,
// counters and histograms together.
func TestMetricsMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	single := NewMetrics()
	shards := [3]*Metrics{NewMetrics(), NewMetrics(), NewMetrics()}
	names := []string{"phase.isel", "phase.check", "smt.query"}
	for i := 0; i < 5000; i++ {
		name := names[rng.Intn(len(names))]
		d := time.Duration(rng.Int63n(int64(time.Second)))
		single.Observe(name, d)
		single.Add("n."+name, 1)
		s := shards[rng.Intn(3)]
		s.Observe(name, d)
		s.Add("n."+name, 1)
	}
	merged := NewMetrics()
	for _, s := range shards {
		merged.Merge(s)
	}
	for _, name := range names {
		sh, mh := single.Hist(name), merged.Hist(name)
		if !reflect.DeepEqual(sh, mh) {
			t.Errorf("%s: merged hist differs:\nsingle %+v\nmerged %+v", name, sh, mh)
		}
		if single.Counter("n."+name) != merged.Counter("n."+name) {
			t.Errorf("%s: counter differs: %d vs %d", name,
				single.Counter("n."+name), merged.Counter("n."+name))
		}
	}
}

// TestHistogramStats sanity-checks mean/quantile/bucket edges.
func TestHistogramStats(t *testing.T) {
	h := &Histogram{}
	for _, ms := range []int64{1, 2, 4, 8, 1000} {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	if h.Count != 5 {
		t.Fatalf("count = %d", h.Count)
	}
	if got, want := h.Mean(), 203*time.Millisecond; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
	if h.Min != int64(time.Millisecond) || h.Max != int64(time.Second) {
		t.Errorf("min/max = %d/%d", h.Min, h.Max)
	}
	// The median observation is 4ms; the bucket upper edge is within 2x.
	med := h.Quantile(0.5)
	if med < 4*time.Millisecond || med > 8*time.Millisecond {
		t.Errorf("p50 = %v, want within [4ms, 8ms]", med)
	}
	if q := h.Quantile(1.0); q != time.Second {
		t.Errorf("p100 = %v, want 1s", q)
	}
	bs := h.Buckets()
	if len(bs) == 0 {
		t.Fatal("no buckets")
	}
	var n int64
	for _, b := range bs {
		if b.Lo >= b.Hi {
			t.Errorf("bucket [%v,%v) inverted", b.Lo, b.Hi)
		}
		n += b.Count
	}
	if n != h.Count {
		t.Errorf("bucket counts sum to %d, want %d", n, h.Count)
	}
	var empty Histogram
	if empty.Buckets() != nil || empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram not inert")
	}
}
