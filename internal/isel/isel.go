// Package isel implements the Instruction Selection pass validated by the
// paper's TV prototype (§4.1): it lowers the LLVM IR subset of
// internal/llvmir to the Virtual x86 of internal/vx86 at -O0, one basic
// block at a time, preserving block and call-site order.
//
// The pass doubles as the untrusted compiler under validation:
//
//   - It emits the compiler hints of §4.5 (register correspondence, block
//     correspondence, materialized constants) consumed by internal/vcgen.
//     The hint generator is deliberately trivial — the paper's point is
//     that it requires no formal-methods expertise.
//   - It carries two optional peephole optimizations, each with a bug
//     switch reproducing a real LLVM miscompilation: the write-after-write
//     store-merge bug of Figures 8/9 and the load-narrowing bug of
//     Figures 10/11.
package isel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/llvmir"
	"repro/internal/telemetry"
	"repro/internal/vx86"
)

// Options selects optional peepholes and bug injection.
type Options struct {
	// MergeStores enables the (correct) store-merging peephole of
	// Figure 9(c).
	MergeStores bool
	// BugWAWStoreMerge replaces the store merge with the buggy variant of
	// Figure 9(b), which sinks the earlier store past intervening stores
	// without an overlap check (implies MergeStores).
	BugWAWStoreMerge bool
	// BugLoadNarrow makes the load-narrowing pattern emit a full-width
	// access as in Figure 11(b), reading past the end of the object.
	BugLoadNarrow bool
	// StrengthReduce rewrites multiplication and unsigned division by
	// powers of two into shifts — the class of ISel strength reductions
	// the paper's §4.7 calls out as hard for Z3 to re-prove (the
	// bit-blasting solver here handles them directly).
	StrengthReduce bool
	// Trace, when non-nil, receives spans for the lowering and peephole
	// sub-phases, nested under TraceParent.
	Trace       *telemetry.Tracer
	TraceParent telemetry.SpanID
}

// Hints is the compiler-emitted information consumed by the VC generator
// (paper §4.5): nothing more than name correspondences.
type Hints struct {
	// RegMap maps an LLVM register name (no sigil) to the corresponding
	// Virtual x86 observable (e.g. "%vr3_32").
	RegMap map[string]string
	// ConstMap maps a Virtual x86 observable to the constant the compiler
	// materialized into it (e.g. "%vr9_32" -> 1 in Figure 2).
	ConstMap map[string]uint64
	// BlockMap maps LLVM block labels to Virtual x86 block labels.
	BlockMap map[string]string
}

// Result bundles the output function with its hints.
type Result struct {
	Fn    *vx86.Function
	Hints *Hints
}

// ErrUnsupported marks constructs outside the supported fragment (the
// analogue of the paper's 840 functions excluded from the evaluation).
type ErrUnsupported struct{ What string }

func (e *ErrUnsupported) Error() string { return "isel: unsupported: " + e.What }

// Compile lowers fn to Virtual x86.
func Compile(mod *llvmir.Module, fn *llvmir.Function, opts Options) (*Result, error) {
	c := &compiler{
		mod:  mod,
		fn:   fn,
		opts: opts,
		hints: &Hints{
			RegMap:   make(map[string]string),
			ConstMap: make(map[string]uint64),
			BlockMap: make(map[string]string),
		},
		regMap:     make(map[string]vx86.Reg),
		allocaObjs: make(map[string]string),
		out:        &vx86.Function{Name: fn.Name},
	}
	if err := c.compile(); err != nil {
		return nil, err
	}
	return &Result{Fn: c.out, Hints: c.hints}, nil
}

type compiler struct {
	mod   *llvmir.Module
	fn    *llvmir.Function
	opts  Options
	hints *Hints

	out           *vx86.Function
	cur           *vx86.Block
	vregN         int
	regMap        map[string]vx86.Reg // LLVM reg -> vx86 vreg
	allocaObjs    map[string]string   // LLVM reg -> frame object name
	skip          map[*llvmir.Instr]bool
	pendingConsts []pendingConst
}

func (c *compiler) fresh(width uint8) vx86.Reg {
	r := vx86.VReg(c.vregN, width)
	c.vregN++
	return r
}

func (c *compiler) emit(in *vx86.Instr) { c.cur.Instrs = append(c.cur.Instrs, in) }

// lowWidth maps an LLVM register-sized type to the vx86 register width
// (i1 values live in 8-bit registers).
func lowWidth(ty llvmir.Type) (uint8, error) {
	bits, err := llvmir.BitsOf(ty)
	if err != nil {
		return 0, &ErrUnsupported{What: fmt.Sprintf("value of type %s", ty)}
	}
	switch bits {
	case 1:
		return 8, nil
	case 8, 16, 32, 64:
		return uint8(bits), nil
	}
	return 0, &ErrUnsupported{What: fmt.Sprintf("register width i%d", bits)}
}

func (c *compiler) compile() error {
	if !c.fn.Defined() {
		return fmt.Errorf("isel: cannot compile declaration @%s", c.fn.Name)
	}
	// Pre-assign virtual registers to every LLVM register so that forward
	// references (loop-carried phis) resolve.
	regTys := llvmir.RegTypes(c.fn)
	names := make([]string, 0, len(regTys))
	for name := range regTys {
		names = append(names, name)
	}
	sort.Strings(names)
	// Block labels first (deterministic .LBBn numbering).
	for i, b := range c.fn.Blocks {
		c.hints.BlockMap[b.Name] = fmt.Sprintf(".LBB%d", i)
	}
	for _, name := range names {
		ty := regTys[name]
		if _, ok := ty.(llvmir.VoidType); ok {
			continue
		}
		w, err := lowWidth(ty)
		if err != nil {
			// Non-standard widths (e.g. i48) are only reachable through
			// the load-narrowing pattern, which bypasses the register map;
			// any other use surfaces as "unmapped register" below.
			continue
		}
		r := c.fresh(w)
		c.regMap[name] = r
		c.hints.RegMap[name] = r.String()
	}

	c.skip = make(map[*llvmir.Instr]bool)
	lowerSpan := c.opts.Trace.Start(c.opts.TraceParent, "isel.lower",
		telemetry.Int("blocks", int64(len(c.fn.Blocks))))
	for i, b := range c.fn.Blocks {
		c.cur = &vx86.Block{Name: c.hints.BlockMap[b.Name]}
		c.out.Blocks = append(c.out.Blocks, c.cur)
		if i == 0 {
			if err := c.lowerParams(); err != nil {
				lowerSpan.End()
				return err
			}
		}
		if err := c.lowerBlock(b); err != nil {
			lowerSpan.End()
			return err
		}
	}
	lowerSpan.End()
	peepSpan := c.opts.Trace.Start(c.opts.TraceParent, "isel.peephole")
	c.insertPhiConstMaterializations()
	if c.opts.MergeStores || c.opts.BugWAWStoreMerge {
		for _, b := range c.out.Blocks {
			mergeStores(b, c.opts.BugWAWStoreMerge)
		}
	}
	peepSpan.End()
	return nil
}

// lowerParams emits the parameter copies of the entry block (the COPY
// cluster of Figure 2(b)) following the System V argument registers.
func (c *compiler) lowerParams() error {
	if len(c.fn.Params) > len(vx86.ArgRegs) {
		return &ErrUnsupported{What: "more than six integer arguments"}
	}
	for i, p := range c.fn.Params {
		w, err := lowWidth(p.Ty)
		if err != nil {
			return err
		}
		dst := c.regMap[p.Name]
		src := vx86.Reg{Name: vx86.ArgRegs[i], Width: w}
		c.emit(&vx86.Instr{Op: vx86.OpCopy, Dst: dst, HasDst: true,
			Srcs: []vx86.Operand{vx86.RegOp(src)}})
	}
	return nil
}

// operand lowers a value into an instruction operand, emitting address
// materialization when needed.
func (c *compiler) operand(v llvmir.Value) (vx86.Operand, error) {
	switch v.Kind {
	case llvmir.VInt:
		return vx86.ImmOp(int64(v.Int)), nil
	case llvmir.VReg:
		if obj, ok := c.allocaObjs[v.Name]; ok {
			// Address of a stack slot as a value: materialize with lea.
			dst := c.fresh(64)
			c.emit(&vx86.Instr{Op: vx86.OpLea, Dst: dst, HasDst: true,
				Addr: &vx86.Addr{Sym: obj}})
			return vx86.RegOp(dst), nil
		}
		r, ok := c.regMap[v.Name]
		if !ok {
			return vx86.Operand{}, &ErrUnsupported{What: fmt.Sprintf("use of unmappable register %%%s", v.Name)}
		}
		return vx86.RegOp(r), nil
	case llvmir.VGlobal:
		dst := c.fresh(64)
		c.emit(&vx86.Instr{Op: vx86.OpLea, Dst: dst, HasDst: true,
			Addr: &vx86.Addr{Sym: "@" + v.Name, Off: int64(v.Off)}})
		return vx86.RegOp(dst), nil
	}
	return vx86.Operand{}, fmt.Errorf("isel: bad value kind")
}

// addrOf lowers a pointer operand to an addressing-mode operand, folding
// global and stack-slot symbols (so the peepholes see concrete addresses,
// as SelectionDAG does).
func (c *compiler) addrOf(v llvmir.Value) (*vx86.Addr, error) {
	switch v.Kind {
	case llvmir.VGlobal:
		return &vx86.Addr{Sym: "@" + v.Name, Off: int64(v.Off)}, nil
	case llvmir.VReg:
		if obj, ok := c.allocaObjs[v.Name]; ok {
			return &vx86.Addr{Sym: obj}, nil
		}
		r, ok := c.regMap[v.Name]
		if !ok {
			return nil, fmt.Errorf("isel: unmapped pointer register %%%s", v.Name)
		}
		if r.Width != 64 {
			return nil, fmt.Errorf("isel: pointer register %%%s is %d-bit", v.Name, r.Width)
		}
		return &vx86.Addr{Base: &r}, nil
	case llvmir.VInt:
		return nil, &ErrUnsupported{What: "constant-integer pointer"}
	}
	return nil, fmt.Errorf("isel: bad pointer operand")
}

var aluOp = map[llvmir.Opcode]vx86.Op{
	llvmir.OpAdd: vx86.OpAdd, llvmir.OpSub: vx86.OpSub, llvmir.OpMul: vx86.OpIMul,
	llvmir.OpAnd: vx86.OpAnd, llvmir.OpOr: vx86.OpOr, llvmir.OpXor: vx86.OpXor,
	llvmir.OpShl: vx86.OpShl, llvmir.OpLShr: vx86.OpShr, llvmir.OpAShr: vx86.OpSar,
	llvmir.OpUDiv: vx86.OpUDiv, llvmir.OpURem: vx86.OpURem,
	llvmir.OpSDiv: vx86.OpIDiv, llvmir.OpSRem: vx86.OpIRem,
}

var ccOfPred = map[llvmir.CmpPred]vx86.CC{
	llvmir.CmpEQ: vx86.CCE, llvmir.CmpNE: vx86.CCNE,
	llvmir.CmpULT: vx86.CCB, llvmir.CmpULE: vx86.CCBE,
	llvmir.CmpUGT: vx86.CCA, llvmir.CmpUGE: vx86.CCAE,
	llvmir.CmpSLT: vx86.CCL, llvmir.CmpSLE: vx86.CCLE,
	llvmir.CmpSGT: vx86.CCG, llvmir.CmpSGE: vx86.CCGE,
}

var invCC = map[vx86.CC]vx86.CC{
	vx86.CCE: vx86.CCNE, vx86.CCNE: vx86.CCE,
	vx86.CCB: vx86.CCAE, vx86.CCAE: vx86.CCB,
	vx86.CCBE: vx86.CCA, vx86.CCA: vx86.CCBE,
	vx86.CCL: vx86.CCGE, vx86.CCGE: vx86.CCL,
	vx86.CCLE: vx86.CCG, vx86.CCG: vx86.CCLE,
	vx86.CCS: vx86.CCNS, vx86.CCNS: vx86.CCS,
}

func (c *compiler) lowerBlock(b *llvmir.Block) error {
	for i, in := range b.Instrs {
		if c.skip[in] {
			continue
		}
		if err := c.lowerInstr(b, i, in); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) lowerInstr(b *llvmir.Block, idx int, in *llvmir.Instr) error {
	switch in.Op {
	case llvmir.OpPhi:
		dst := c.regMap[in.Name]
		phi := &vx86.Instr{Op: vx86.OpPhi, Dst: dst, HasDst: true}
		for _, inc := range in.Incoming {
			var op vx86.Operand
			switch inc.Val.Kind {
			case llvmir.VInt:
				// Constants flowing into phis are materialized in the
				// predecessor (like %vr9_32 = mov 1 in Figure 2); the
				// actual insertion happens in a fixup pass once all blocks
				// exist.
				r := c.fresh(dst.Width)
				c.hints.ConstMap[r.String()] = inc.Val.Int
				c.pendingConsts = append(c.pendingConsts, pendingConst{
					block: c.hints.BlockMap[inc.Pred], reg: r, val: int64(inc.Val.Int),
				})
				op = vx86.RegOp(r)
			case llvmir.VReg:
				rr, ok := c.regMap[inc.Val.Name]
				if !ok {
					return fmt.Errorf("isel: unmapped phi input %%%s", inc.Val.Name)
				}
				op = vx86.RegOp(rr)
			default:
				return &ErrUnsupported{What: "global address as phi input"}
			}
			phi.Phi = append(phi.Phi, vx86.PhiIn{Val: op, Pred: c.hints.BlockMap[inc.Pred]})
		}
		c.emit(phi)
		return nil

	case llvmir.OpAdd, llvmir.OpSub, llvmir.OpMul, llvmir.OpAnd, llvmir.OpOr,
		llvmir.OpXor, llvmir.OpShl, llvmir.OpLShr, llvmir.OpAShr,
		llvmir.OpUDiv, llvmir.OpURem, llvmir.OpSDiv, llvmir.OpSRem:
		a, err := c.operand(in.Args[0])
		if err != nil {
			return err
		}
		bOp, err := c.operand(in.Args[1])
		if err != nil {
			return err
		}
		if c.opts.StrengthReduce && bOp.Kind == vx86.OImm {
			if done := c.strengthReduce(in, a, uint64(bOp.Imm)); done {
				return nil
			}
		}
		c.emit(&vx86.Instr{Op: aluOp[in.Op], Dst: c.regMap[in.Name], HasDst: true,
			Srcs: []vx86.Operand{a, bOp}})
		return nil

	case llvmir.OpICmp:
		// Fused pattern: the compare immediately precedes a conditional
		// branch on its result and has no other use — emit the flag-setting
		// sub at the branch (handled by OpCondBr below).
		if idx == len(b.Instrs)-2 {
			term := b.Term()
			if term.Op == llvmir.OpCondBr && term.Args[0].Kind == llvmir.VReg &&
				term.Args[0].Name == in.Name && c.useCount(in.Name) == 1 {
				return nil // lowered together with the terminator
			}
		}
		// Materialized i1: sub + setcc into an 8-bit register.
		if err := c.emitCompare(in); err != nil {
			return err
		}
		c.emit(&vx86.Instr{Op: vx86.OpSetcc, Dst: c.regMap[in.Name], HasDst: true,
			CC: ccOfPred[in.Pred]})
		return nil

	case llvmir.OpTrunc:
		return c.lowerCast(in)
	case llvmir.OpZExt, llvmir.OpSExt, llvmir.OpBitcast, llvmir.OpIntToPtr, llvmir.OpPtrToInt:
		return c.lowerCast(in)

	case llvmir.OpGEP:
		return c.lowerGEP(in)

	case llvmir.OpLoad:
		return c.lowerLoad(b, idx, in)

	case llvmir.OpStore:
		return c.lowerStore(in)

	case llvmir.OpAlloca:
		c.allocaObjs[in.Name] = llvmir.AllocaObjectName(c.fn, in.Name)
		return nil

	case llvmir.OpBr:
		c.emit(&vx86.Instr{Op: vx86.OpJmp, Label: c.hints.BlockMap[in.Labels[0]]})
		return nil

	case llvmir.OpCondBr:
		return c.lowerCondBr(b, in)

	case llvmir.OpRet:
		if len(in.Args) > 0 {
			w, err := lowWidth(in.Ty)
			if err != nil {
				return err
			}
			v, err := c.operand(in.Args[0])
			if err != nil {
				return err
			}
			c.emit(&vx86.Instr{Op: vx86.OpCopy, Dst: vx86.Reg{Name: "rax", Width: w},
				HasDst: true, Srcs: []vx86.Operand{v}})
		}
		c.emit(&vx86.Instr{Op: vx86.OpRet})
		return nil

	case llvmir.OpCall:
		return c.lowerCall(in)

	case llvmir.OpSelect:
		return c.lowerSelect(in)
	}
	return &ErrUnsupported{What: fmt.Sprintf("instruction %s", in)}
}

// strengthReduce lowers mul/udiv/urem by a power-of-two constant into
// shifts and masks (returns false when the pattern does not apply).
func (c *compiler) strengthReduce(in *llvmir.Instr, a vx86.Operand, k uint64) bool {
	if k == 0 || k&(k-1) != 0 {
		return false
	}
	sh := int64(0)
	for v := k; v > 1; v >>= 1 {
		sh++
	}
	dst := c.regMap[in.Name]
	switch in.Op {
	case llvmir.OpMul:
		c.emit(&vx86.Instr{Op: vx86.OpShl, Dst: dst, HasDst: true,
			Srcs: []vx86.Operand{a, vx86.ImmOp(sh)}})
		return true
	case llvmir.OpUDiv:
		c.emit(&vx86.Instr{Op: vx86.OpShr, Dst: dst, HasDst: true,
			Srcs: []vx86.Operand{a, vx86.ImmOp(sh)}})
		return true
	case llvmir.OpURem:
		c.emit(&vx86.Instr{Op: vx86.OpAnd, Dst: dst, HasDst: true,
			Srcs: []vx86.Operand{a, vx86.ImmOp(int64(k - 1))}})
		return true
	}
	return false
}

// useCount counts uses of a register across the function.
func (c *compiler) useCount(name string) int {
	n := 0
	for _, b := range c.fn.Blocks {
		for _, in := range b.Instrs {
			for _, v := range in.Args {
				if v.Kind == llvmir.VReg && v.Name == name {
					n++
				}
			}
			for _, inc := range in.Incoming {
				if inc.Val.Kind == llvmir.VReg && inc.Val.Name == name {
					n++
				}
			}
		}
	}
	return n
}

// emitCompare emits the flag-setting sub for an icmp (the SelectionDAG
// lowering the paper shows in Figure 2: a sub whose result is unused).
func (c *compiler) emitCompare(in *llvmir.Instr) error {
	a, err := c.operand(in.Args[0])
	if err != nil {
		return err
	}
	bOp, err := c.operand(in.Args[1])
	if err != nil {
		return err
	}
	w, err := lowWidth(in.Ty)
	if err != nil {
		return err
	}
	c.emit(&vx86.Instr{Op: vx86.OpSub, Dst: c.fresh(w), HasDst: true,
		Srcs: []vx86.Operand{a, bOp}})
	return nil
}

func (c *compiler) lowerCondBr(b *llvmir.Block, term *llvmir.Instr) error {
	thenL := c.hints.BlockMap[term.Labels[0]]
	elseL := c.hints.BlockMap[term.Labels[1]]
	// Fused icmp?
	if len(b.Instrs) >= 2 {
		prev := b.Instrs[len(b.Instrs)-2]
		if prev.Op == llvmir.OpICmp && term.Args[0].Kind == llvmir.VReg &&
			term.Args[0].Name == prev.Name && c.useCount(prev.Name) == 1 {
			if err := c.emitCompare(prev); err != nil {
				return err
			}
			// Invert the condition and jump to the false target first,
			// matching Figure 2 (`jae .LBB4; jmp .LBB2`).
			c.emit(&vx86.Instr{Op: vx86.OpJcc, CC: invCC[ccOfPred[prev.Pred]], Label: elseL})
			c.emit(&vx86.Instr{Op: vx86.OpJmp, Label: thenL})
			return nil
		}
	}
	// General i1 value: test the 8-bit register.
	cond, err := c.operand(term.Args[0])
	if err != nil {
		return err
	}
	c.emit(&vx86.Instr{Op: vx86.OpTest, Srcs: []vx86.Operand{cond, cond}})
	c.emit(&vx86.Instr{Op: vx86.OpJcc, CC: vx86.CCE, Label: elseL})
	c.emit(&vx86.Instr{Op: vx86.OpJmp, Label: thenL})
	return nil
}

func (c *compiler) lowerCast(in *llvmir.Instr) error {
	srcBits, err := llvmir.BitsOf(in.SrcTy)
	if err != nil {
		return &ErrUnsupported{What: err.Error()}
	}
	dstW, err := lowWidth(in.Ty)
	if err != nil {
		return err
	}
	srcW, err := lowWidth(in.SrcTy)
	if err != nil {
		return err
	}
	src, err := c.operand(in.Args[0])
	if err != nil {
		return err
	}
	if src.Kind != vx86.OReg {
		// Constant operand: fold the cast and materialize the result.
		folded := foldCast(in, uint64(src.Imm), srcBits)
		c.emit(&vx86.Instr{Op: vx86.OpMov, Dst: c.regMap[in.Name], HasDst: true,
			Srcs: []vx86.Operand{vx86.ImmOp(int64(folded))}})
		return nil
	}
	dst := c.regMap[in.Name]
	switch in.Op {
	case llvmir.OpTrunc:
		dstBits, _ := llvmir.BitsOf(in.Ty)
		if dstBits == 1 {
			// i1 truncation keeps bit 0 in an 8-bit register.
			t := src.Reg
			if srcW > 8 {
				tr := c.fresh(8)
				c.emit(&vx86.Instr{Op: vx86.OpTruncR, Dst: tr, HasDst: true, Srcs: []vx86.Operand{src}})
				t = tr
			}
			c.emit(&vx86.Instr{Op: vx86.OpAnd, Dst: dst, HasDst: true,
				Srcs: []vx86.Operand{vx86.RegOp(t), vx86.ImmOp(1)}})
			return nil
		}
		c.emit(&vx86.Instr{Op: vx86.OpTruncR, Dst: dst, HasDst: true, Srcs: []vx86.Operand{src}})
		return nil
	case llvmir.OpZExt:
		c.emit(&vx86.Instr{Op: vx86.OpMovzx, Dst: dst, HasDst: true, Srcs: []vx86.Operand{src}})
		return nil
	case llvmir.OpSExt:
		if srcBits == 1 {
			// 0/1 byte → 0/-1: widen then negate.
			t := c.fresh(dstW)
			c.emit(&vx86.Instr{Op: vx86.OpMovzx, Dst: t, HasDst: true, Srcs: []vx86.Operand{src}})
			c.emit(&vx86.Instr{Op: vx86.OpNeg, Dst: dst, HasDst: true, Srcs: []vx86.Operand{vx86.RegOp(t)}})
			return nil
		}
		c.emit(&vx86.Instr{Op: vx86.OpMovsx, Dst: dst, HasDst: true, Srcs: []vx86.Operand{src}})
		return nil
	case llvmir.OpBitcast:
		c.emit(&vx86.Instr{Op: vx86.OpCopy, Dst: dst, HasDst: true, Srcs: []vx86.Operand{src}})
		return nil
	case llvmir.OpIntToPtr:
		if srcW < 64 {
			c.emit(&vx86.Instr{Op: vx86.OpMovzx, Dst: dst, HasDst: true, Srcs: []vx86.Operand{src}})
		} else {
			c.emit(&vx86.Instr{Op: vx86.OpCopy, Dst: dst, HasDst: true, Srcs: []vx86.Operand{src}})
		}
		return nil
	case llvmir.OpPtrToInt:
		if dstW < 64 {
			c.emit(&vx86.Instr{Op: vx86.OpTruncR, Dst: dst, HasDst: true, Srcs: []vx86.Operand{src}})
		} else {
			c.emit(&vx86.Instr{Op: vx86.OpCopy, Dst: dst, HasDst: true, Srcs: []vx86.Operand{src}})
		}
		return nil
	}
	return &ErrUnsupported{What: "cast"}
}

func (c *compiler) lowerGEP(in *llvmir.Instr) error {
	base, err := c.operand(in.Args[0])
	if err != nil {
		return err
	}
	if base.Kind != vx86.OReg {
		return &ErrUnsupported{What: "non-register gep base"}
	}
	cur := base.Reg
	ty := in.SrcTy
	constOff := int64(0)
	elemTy := ty
	for i, idxV := range in.Args[1:] {
		var scale int
		if i == 0 {
			scale = llvmir.SizeOf(ty)
		} else {
			at, ok := elemTy.(llvmir.ArrayType)
			if !ok {
				return &ErrUnsupported{What: "gep into non-array with runtime index"}
			}
			scale = llvmir.SizeOf(at.Elem)
			elemTy = at.Elem
		}
		if i == 0 {
			elemTy = ty
		}
		if idxV.Kind == llvmir.VInt {
			constOff += int64(int64(idxV.Int) * int64(scale))
			continue
		}
		// Symbolic index: sign-extend to 64 bits, scale, add.
		iv, err := c.operand(idxV)
		if err != nil {
			return err
		}
		iw, err := lowWidth(idxV.Ty)
		if err != nil {
			return err
		}
		i64reg := iv.Reg
		if iw < 64 {
			t := c.fresh(64)
			c.emit(&vx86.Instr{Op: vx86.OpMovsx, Dst: t, HasDst: true, Srcs: []vx86.Operand{iv}})
			i64reg = t
		}
		scaled := c.fresh(64)
		c.emit(&vx86.Instr{Op: vx86.OpIMul, Dst: scaled, HasDst: true,
			Srcs: []vx86.Operand{vx86.RegOp(i64reg), vx86.ImmOp(int64(scale))}})
		sum := c.fresh(64)
		c.emit(&vx86.Instr{Op: vx86.OpAdd, Dst: sum, HasDst: true,
			Srcs: []vx86.Operand{vx86.RegOp(cur), vx86.RegOp(scaled)}})
		cur = sum
	}
	dst := c.regMap[in.Name]
	if constOff != 0 {
		c.emit(&vx86.Instr{Op: vx86.OpLea, Dst: dst, HasDst: true,
			Addr: &vx86.Addr{Base: &cur, Off: constOff}})
	} else {
		c.emit(&vx86.Instr{Op: vx86.OpCopy, Dst: dst, HasDst: true,
			Srcs: []vx86.Operand{vx86.RegOp(cur)}})
	}
	return nil
}

func (c *compiler) lowerLoad(b *llvmir.Block, idx int, in *llvmir.Instr) error {
	bits, err := llvmir.BitsOf(in.Ty)
	if err != nil {
		return &ErrUnsupported{What: err.Error()}
	}
	size := llvmir.SizeOf(in.Ty)
	std := bits == 8 || bits == 16 || bits == 32 || bits == 64

	if !std && bits != 1 {
		// Non-standard widths are only supported through the narrowing
		// pattern (load; lshr C; trunc), like SelectionDAG legalization.
		return c.lowerNarrowPattern(b, idx, in)
	}

	addr, err := c.addrOf(in.Args[0])
	if err != nil {
		return err
	}
	if bits == 1 {
		t := c.fresh(8)
		c.emit(&vx86.Instr{Op: vx86.OpLoad, Dst: t, HasDst: true, Addr: addr, Size: 1})
		c.emit(&vx86.Instr{Op: vx86.OpAnd, Dst: c.regMap[in.Name], HasDst: true,
			Srcs: []vx86.Operand{vx86.RegOp(t), vx86.ImmOp(1)}})
		return nil
	}
	c.emit(&vx86.Instr{Op: vx86.OpLoad, Dst: c.regMap[in.Name], HasDst: true,
		Addr: addr, Size: size})
	return nil
}

// lowerNarrowPattern matches `%v = load iW; %s = lshr iW %v, C; %t = trunc
// iW %s to iT` and emits a narrow load of the selected bytes (Figure 11a).
// With Options.BugLoadNarrow it emits the full iT-sized access instead,
// which can read past the end of the object (Figure 11b).
func (c *compiler) lowerNarrowPattern(b *llvmir.Block, idx int, load *llvmir.Instr) error {
	wBits, _ := llvmir.BitsOf(load.Ty)
	unsupported := &ErrUnsupported{What: fmt.Sprintf("load of i%d outside the narrowing pattern", wBits)}
	if idx+2 >= len(b.Instrs) {
		return unsupported
	}
	shr := b.Instrs[idx+1]
	trunc := b.Instrs[idx+2]
	if shr.Op != llvmir.OpLShr || shr.Args[0].Kind != llvmir.VReg || shr.Args[0].Name != load.Name ||
		shr.Args[1].Kind != llvmir.VInt {
		return unsupported
	}
	if trunc.Op != llvmir.OpTrunc || trunc.Args[0].Kind != llvmir.VReg || trunc.Args[0].Name != shr.Name {
		return unsupported
	}
	if c.useCount(load.Name) != 1 || c.useCount(shr.Name) != 1 {
		return unsupported
	}
	shift := shr.Args[1].Int
	tBits, err := llvmir.BitsOf(trunc.Ty)
	if err != nil || shift%8 != 0 || int(shift) >= wBits {
		return unsupported
	}
	tW, err := lowWidth(trunc.Ty)
	if err != nil {
		return err
	}
	byteOff := int64(shift / 8)
	availBytes := (wBits+7)/8 - int(byteOff)
	narrow := availBytes
	if tBits/8 < narrow {
		narrow = tBits / 8
	}
	if narrow != 1 && narrow != 2 && narrow != 4 && narrow != 8 {
		return unsupported
	}
	if c.opts.BugLoadNarrow {
		// Figure 11(b): the access is widened to the destination width,
		// reading availBytes..tBits/8 bytes past the object's end.
		narrow = tBits / 8
	}

	addr, err := c.addrOf(load.Args[0])
	if err != nil {
		return err
	}
	addr.Off += byteOff
	dst := c.regMap[trunc.Name]
	if narrow*8 == int(tW) {
		c.emit(&vx86.Instr{Op: vx86.OpLoad, Dst: dst, HasDst: true, Addr: addr, Size: narrow})
	} else {
		t := c.fresh(uint8(8 * narrow))
		c.emit(&vx86.Instr{Op: vx86.OpLoad, Dst: t, HasDst: true, Addr: addr, Size: narrow})
		c.emit(&vx86.Instr{Op: vx86.OpMovzx, Dst: dst, HasDst: true,
			Srcs: []vx86.Operand{vx86.RegOp(t)}})
	}
	c.skip[shr] = true
	c.skip[trunc] = true
	return nil
}

func (c *compiler) lowerStore(in *llvmir.Instr) error {
	bits, err := llvmir.BitsOf(in.Ty)
	if err != nil {
		return &ErrUnsupported{What: err.Error()}
	}
	if bits != 1 && bits != 8 && bits != 16 && bits != 32 && bits != 64 {
		return &ErrUnsupported{What: fmt.Sprintf("store of i%d", bits)}
	}
	size := llvmir.SizeOf(in.Ty)
	v, err := c.operand(in.Args[0])
	if err != nil {
		return err
	}
	addr, err := c.addrOf(in.Args[1])
	if err != nil {
		return err
	}
	c.emit(&vx86.Instr{Op: vx86.OpStore, Addr: addr, Size: size, Srcs: []vx86.Operand{v}})
	return nil
}

func (c *compiler) lowerCall(in *llvmir.Instr) error {
	if len(in.Args) > len(vx86.ArgRegs) {
		return &ErrUnsupported{What: "more than six call arguments"}
	}
	for i, a := range in.Args {
		w, err := lowWidth(a.Ty)
		if err != nil {
			return err
		}
		op, err := c.operand(a)
		if err != nil {
			return err
		}
		c.emit(&vx86.Instr{Op: vx86.OpCopy, Dst: vx86.Reg{Name: vx86.ArgRegs[i], Width: w},
			HasDst: true, Srcs: []vx86.Operand{op}})
	}
	c.emit(&vx86.Instr{Op: vx86.OpCall, Callee: in.Callee})
	if in.Name != "" {
		w, err := lowWidth(in.Ty)
		if err != nil {
			return err
		}
		c.emit(&vx86.Instr{Op: vx86.OpCopy, Dst: c.regMap[in.Name], HasDst: true,
			Srcs: []vx86.Operand{vx86.RegOp(vx86.Reg{Name: "rax", Width: w})}})
	}
	return nil
}

// lowerSelect emits a branch-free mask-based select (no CMOV in the
// modeled subset): r = (a & mask) | (b & ~mask) with mask = -zext(cond).
func (c *compiler) lowerSelect(in *llvmir.Instr) error {
	w, err := lowWidth(in.Ty)
	if err != nil {
		return err
	}
	cond, err := c.operand(in.Args[0])
	if err != nil {
		return err
	}
	a, err := c.operand(in.Args[1])
	if err != nil {
		return err
	}
	bOp, err := c.operand(in.Args[2])
	if err != nil {
		return err
	}
	if cond.Kind != vx86.OReg {
		return &ErrUnsupported{What: "constant select condition"}
	}
	wide := c.fresh(w)
	if w == 8 {
		c.emit(&vx86.Instr{Op: vx86.OpCopy, Dst: wide, HasDst: true, Srcs: []vx86.Operand{cond}})
	} else {
		c.emit(&vx86.Instr{Op: vx86.OpMovzx, Dst: wide, HasDst: true, Srcs: []vx86.Operand{cond}})
	}
	maskR := c.fresh(w)
	c.emit(&vx86.Instr{Op: vx86.OpNeg, Dst: maskR, HasDst: true, Srcs: []vx86.Operand{vx86.RegOp(wide)}})
	t1 := c.fresh(w)
	c.emit(&vx86.Instr{Op: vx86.OpAnd, Dst: t1, HasDst: true,
		Srcs: []vx86.Operand{a, vx86.RegOp(maskR)}})
	inv := c.fresh(w)
	c.emit(&vx86.Instr{Op: vx86.OpNot, Dst: inv, HasDst: true, Srcs: []vx86.Operand{vx86.RegOp(maskR)}})
	t2 := c.fresh(w)
	c.emit(&vx86.Instr{Op: vx86.OpAnd, Dst: t2, HasDst: true,
		Srcs: []vx86.Operand{bOp, vx86.RegOp(inv)}})
	c.emit(&vx86.Instr{Op: vx86.OpOr, Dst: c.regMap[in.Name], HasDst: true,
		Srcs: []vx86.Operand{vx86.RegOp(t1), vx86.RegOp(t2)}})
	return nil
}

type pendingConst struct {
	block string
	reg   vx86.Reg
	val   int64
}

// insertPhiConstMaterializations places `reg = mov val` into each
// predecessor block right before its trailing control transfer.
func (c *compiler) insertPhiConstMaterializations() {
	for _, pc := range c.pendingConsts {
		blk := c.out.BlockByName(pc.block)
		if blk == nil {
			continue
		}
		// Insert before the first control-transfer instruction (mov does
		// not affect flags, so inserting between a compare and its jcc is
		// safe).
		pos := len(blk.Instrs)
		for i, in := range blk.Instrs {
			if in.Op == vx86.OpJcc || in.Op == vx86.OpJmp || in.Op == vx86.OpRet {
				pos = i
				break
			}
		}
		mov := &vx86.Instr{Op: vx86.OpMov, Dst: pc.reg, HasDst: true,
			Srcs: []vx86.Operand{vx86.ImmOp(pc.val)}}
		blk.Instrs = append(blk.Instrs[:pos],
			append([]*vx86.Instr{mov}, blk.Instrs[pos:]...)...)
	}
	c.pendingConsts = nil
}

// HintsString serializes hints in the textual format read by ParseHints.
func (h *Hints) String() string {
	var b strings.Builder
	keys := make([]string, 0, len(h.RegMap))
	for k := range h.RegMap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "reg %%%s %s\n", k, h.RegMap[k])
	}
	keys = keys[:0]
	for k := range h.BlockMap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "block %s %s\n", k, h.BlockMap[k])
	}
	keys = keys[:0]
	for k := range h.ConstMap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "const %s %d\n", k, h.ConstMap[k])
	}
	return b.String()
}

// ParseHints parses the textual hint format emitted by Hints.String.
func ParseHints(src string) (*Hints, error) {
	h := &Hints{
		RegMap:   make(map[string]string),
		ConstMap: make(map[string]uint64),
		BlockMap: make(map[string]string),
	}
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("isel: hints line %d malformed: %q", i+1, line)
		}
		switch fields[0] {
		case "reg":
			h.RegMap[strings.TrimPrefix(fields[1], "%")] = fields[2]
		case "block":
			h.BlockMap[fields[1]] = fields[2]
		case "const":
			var v uint64
			if _, err := fmt.Sscanf(fields[2], "%d", &v); err != nil {
				return nil, fmt.Errorf("isel: hints line %d: bad constant", i+1)
			}
			h.ConstMap[fields[1]] = v
		default:
			return nil, fmt.Errorf("isel: hints line %d: unknown kind %q", i+1, fields[0])
		}
	}
	return h, nil
}
