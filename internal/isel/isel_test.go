package isel

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/llvmir"
	"repro/internal/mem"
	"repro/internal/paperprogs"
	"repro/internal/vx86"
)

func compile(t *testing.T, src, fn string, opts Options) (*llvmir.Module, *Result) {
	t.Helper()
	m, err := llvmir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := llvmir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	res, err := Compile(m, m.Func(fn), opts)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return m, res
}

// runBoth executes the LLVM source function and its compiled Virtual x86
// translation on the same arguments over identical memories, and compares
// the result and the final memory contents.
func runBoth(t *testing.T, m *llvmir.Module, res *Result, fn string, args []uint64) {
	t.Helper()
	f := m.Func(fn)

	li := llvmir.NewInterp(m)
	wantRet, lerr := li.Call(fn, args)

	layout := mem.NewLayout()
	for _, g := range m.Globals {
		layout.Alloc("@"+g.Name, uint64(llvmir.SizeOf(g.Type)))
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == llvmir.OpAlloca {
				layout.Alloc(llvmir.AllocaObjectName(f, in.Name), uint64(llvmir.SizeOf(in.Ty)))
			}
		}
	}
	prog := &vx86.Program{Funcs: []*vx86.Function{res.Fn}}
	xi := vx86.NewInterp(prog, layout, mem.NewConcrete(layout))
	widths := make([]uint8, len(f.Params))
	for i, p := range f.Params {
		bits, _ := llvmir.BitsOf(p.Ty)
		widths[i] = uint8(bits)
	}
	gotRet, xerr := xi.CallWithArgs(fn, args, widths)

	if (lerr == nil) != (xerr == nil) {
		t.Fatalf("error mismatch: llvm=%v vx86=%v", lerr, xerr)
	}
	if lerr != nil {
		return
	}
	if bits, err := llvmir.BitsOf(f.Ret); err == nil {
		maskv := func(v uint64) uint64 {
			if bits >= 64 {
				return v
			}
			return v & ((1 << bits) - 1)
		}
		if maskv(wantRet) != maskv(gotRet) {
			t.Fatalf("ret mismatch on %v: llvm=%d vx86=%d", args, maskv(wantRet), maskv(gotRet))
		}
	}
	// Compare final global contents (both memories start zeroed).
	for _, g := range m.Globals {
		lo, _ := li.Layout.Find("@" + g.Name)
		xo, _ := layout.Find("@" + g.Name)
		for i := uint64(0); i < lo.Size; i++ {
			lb, _ := li.Mem.Load(lo.Base+i, 1)
			xb, _ := xi.Mem.Load(xo.Base+i, 1)
			if lb != xb {
				t.Fatalf("global @%s byte %d mismatch: llvm=%#x vx86=%#x", g.Name, i, lb, xb)
			}
		}
	}
}

func TestCompileArithmSeqSum(t *testing.T) {
	m, res := compile(t, paperprogs.ArithmSeqSum, "arithm_seq_sum", Options{})
	if len(res.Fn.Blocks) != 5 {
		t.Fatalf("blocks = %d, want 5", len(res.Fn.Blocks))
	}
	// The paper's Figure 2(b) structure: entry copies + const
	// materialization, phi cluster at the loop header, flag-setting sub
	// with jae/jmp.
	entry := res.Fn.Entry()
	copies := 0
	movs := 0
	for _, in := range entry.Instrs {
		switch in.Op {
		case vx86.OpCopy:
			copies++
		case vx86.OpMov:
			movs++
		}
	}
	if copies != 3 || movs != 1 {
		t.Errorf("entry has %d copies and %d movs, want 3 and 1 (Figure 2b)", copies, movs)
	}
	header := res.Fn.Blocks[1]
	phis := 0
	for _, in := range header.Instrs {
		if in.Op == vx86.OpPhi {
			phis++
		}
	}
	if phis != 3 {
		t.Errorf("loop header has %d phis, want 3", phis)
	}
	var sawSub, sawJae bool
	for _, in := range header.Instrs {
		if in.Op == vx86.OpSub {
			sawSub = true
		}
		if in.Op == vx86.OpJcc && in.CC == vx86.CCAE {
			sawJae = true
		}
	}
	if !sawSub || !sawJae {
		t.Errorf("loop header missing sub/jae: sub=%v jae=%v\n%s", sawSub, sawJae,
			(&vx86.Program{Funcs: []*vx86.Function{res.Fn}}).String())
	}
	// Hints must cover all LLVM registers and blocks.
	for _, name := range []string{"a0", "d", "n", "s.0", "a.0", "i.0", "cmp", "add", "add1", "inc"} {
		if _, ok := res.Hints.RegMap[name]; !ok {
			t.Errorf("hint RegMap missing %%%s", name)
		}
	}
	if len(res.Hints.BlockMap) != 5 {
		t.Errorf("BlockMap = %v", res.Hints.BlockMap)
	}
	if len(res.Hints.ConstMap) != 1 {
		t.Errorf("ConstMap = %v, want one materialized constant (1)", res.Hints.ConstMap)
	}
	f := func(a0, d uint32, n uint8) bool {
		runBoth(t, m, res, "arithm_seq_sum", []uint64{uint64(a0), uint64(d), uint64(n % 20)})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileDifferentialSuite(t *testing.T) {
	// Each source is compiled and differentially tested against the LLVM
	// interpreter on a grid of small arguments.
	sources := []struct {
		src, fn string
		arity   int
	}{
		{paperprogs.AllocaExample, "alloca_example", 1},
		{paperprogs.MemSwap, "mem_swap", 0},
		{paperprogs.WAWStores, "waw_foo", 0},
		{`
define i32 @casts(i32 %x) {
entry:
  %t = trunc i32 %x to i8
  %z = zext i8 %t to i32
  %s = sext i8 %t to i32
  %r = add i32 %z, %s
  ret i32 %r
}`, "casts", 1},
		{`
define i64 @geps(i64 %i) {
entry:
  %p = getelementptr inbounds [10 x i32], [10 x i32]* @arr, i64 0, i64 %i
  %q = ptrtoint i32* %p to i64
  ret i64 %q
}
@arr = external global [10 x i32]`, "geps", 1},
		{`
define i32 @sel(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}`, "sel", 2},
		{`
define i32 @bitops(i32 %a, i32 %b) {
entry:
  %x = and i32 %a, %b
  %y = or i32 %a, 240
  %z = xor i32 %x, %y
  %s = shl i32 %z, 3
  %u = lshr i32 %s, 2
  %v = ashr i32 %u, 1
  ret i32 %v
}`, "bitops", 2},
		{`
define i32 @loophi(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %done
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %head
done:
  ret i32 %acc
}`, "loophi", 1},
	}
	argGrid := [][]uint64{
		{}, {0}, {1}, {7}, {0xFFFFFFFF}, {0x80000000},
		{0, 0}, {3, 4}, {0xFFFFFFFF, 1}, {5, 0x80000000},
	}
	for _, tc := range sources {
		m, res := compile(t, tc.src, tc.fn, Options{})
		for _, args := range argGrid {
			if len(args) != tc.arity {
				continue
			}
			// Keep loop counts small.
			capped := make([]uint64, len(args))
			for i, a := range args {
				capped[i] = a
				if tc.fn == "loophi" {
					capped[i] = a % 50
				}
				if tc.fn == "geps" {
					capped[i] = a % 10
				}
			}
			runBoth(t, m, res, tc.fn, capped)
		}
	}
}

func TestCompileUnsupported(t *testing.T) {
	srcs := []string{
		// i48 load outside the narrowing pattern
		`@a = external global i48
define i32 @f() {
entry:
  %v = load i48, i48* @a
  %t = trunc i48 %v to i32
  ret i32 %t
}`,
		// i48 arithmetic
		`define i48 @f(i48 %x) {
entry:
  %r = add i48 %x, 1
  ret i48 %r
}`,
	}
	for _, src := range srcs {
		m, err := llvmir.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		var fn *llvmir.Function
		for _, f := range m.Funcs {
			if f.Defined() {
				fn = f
			}
		}
		if _, err := Compile(m, fn, Options{}); err == nil {
			t.Errorf("unsupported program compiled:\n%s", src)
		} else if _, ok := err.(*ErrUnsupported); !ok {
			t.Errorf("error %v is not ErrUnsupported", err)
		}
	}
}

func TestWAWStoreMergeCorrect(t *testing.T) {
	m, res := compile(t, paperprogs.WAWStores, "waw_foo", Options{MergeStores: true})
	// The correct merge yields two stores: the merged 4-byte store first.
	entry := res.Fn.Entry()
	var stores []*vx86.Instr
	for _, in := range entry.Instrs {
		if in.Op == vx86.OpStore {
			stores = append(stores, in)
		}
	}
	if len(stores) != 2 {
		t.Fatalf("got %d stores after merge, want 2:\n%s", len(stores),
			(&vx86.Program{Funcs: []*vx86.Function{res.Fn}}).String())
	}
	if stores[0].Size != 4 || stores[0].Addr.Off != 0 {
		t.Errorf("first store = %v, want 4 bytes at +0 (Figure 9c)", stores[0])
	}
	if stores[1].Size != 2 || stores[1].Addr.Off != 3 {
		t.Errorf("second store = %v, want 2 bytes at +3", stores[1])
	}
	runBoth(t, m, res, "waw_foo", nil)
}

func TestWAWStoreMergeBuggy(t *testing.T) {
	m, res := compile(t, paperprogs.WAWStores, "waw_foo", Options{BugWAWStoreMerge: true})
	entry := res.Fn.Entry()
	var stores []*vx86.Instr
	for _, in := range entry.Instrs {
		if in.Op == vx86.OpStore {
			stores = append(stores, in)
		}
	}
	if len(stores) != 2 {
		t.Fatalf("got %d stores, want 2", len(stores))
	}
	// Figure 9(b): the 2-byte store at +3 now comes FIRST; the merged
	// 4-byte store follows and wrongly overwrites byte 3.
	if stores[0].Size != 2 || stores[0].Addr.Off != 3 {
		t.Fatalf("first store = %v, want the +3 store (bug shape)", stores[0])
	}
	if stores[1].Size != 4 || stores[1].Addr.Off != 0 {
		t.Fatalf("second store = %v, want merged 4-byte store", stores[1])
	}
	// The miscompilation is observable: byte 3 ends as 0, not 2.
	f := m.Func("waw_foo")
	layout := mem.NewLayout()
	layout.Alloc("@b", 8)
	_ = f
	prog := &vx86.Program{Funcs: []*vx86.Function{res.Fn}}
	xi := vx86.NewInterp(prog, layout, mem.NewConcrete(layout))
	if _, err := xi.Call("waw_foo"); err != nil {
		t.Fatal(err)
	}
	o, _ := layout.Find("@b")
	b3, _ := xi.Mem.Load(o.Base+3, 1)
	if b3 != 0 {
		t.Fatalf("buggy translation produced b[3]=%d; expected the WAW violation (0)", b3)
	}
	li := llvmir.NewInterp(m)
	if _, err := li.Call("waw_foo", nil); err != nil {
		t.Fatal(err)
	}
	lo, _ := li.Layout.Find("@b")
	lb3, _ := li.Mem.Load(lo.Base+3, 1)
	if lb3 != 2 {
		t.Fatalf("source semantics give b[3]=%d, want 2", lb3)
	}
}

func TestLoadNarrowCorrect(t *testing.T) {
	m, res := compile(t, paperprogs.LoadNarrow, "narrow_foo", Options{})
	// Correct translation: 2-byte load at @a+4, zero-extended (Figure 11a
	// scaled down).
	var load *vx86.Instr
	for _, in := range res.Fn.Entry().Instrs {
		if in.Op == vx86.OpLoad {
			load = in
		}
	}
	if load == nil || load.Size != 2 || load.Addr.Off != 4 {
		t.Fatalf("load = %v, want 2 bytes at +4", load)
	}
	runBoth(t, m, res, "narrow_foo", nil)
}

func TestLoadNarrowBuggy(t *testing.T) {
	m, res := compile(t, paperprogs.LoadNarrow, "narrow_foo", Options{BugLoadNarrow: true})
	var load *vx86.Instr
	for _, in := range res.Fn.Entry().Instrs {
		if in.Op == vx86.OpLoad {
			load = in
		}
	}
	// Figure 11(b): a full 4-byte access at +4 — 2 bytes past @a's end.
	if load == nil || load.Size != 4 || load.Addr.Off != 4 {
		t.Fatalf("load = %v, want the widened 4-byte access", load)
	}
	// Concretely this traps as an out-of-bounds access.
	layout := mem.NewLayout()
	layout.Alloc("@a", 6)
	layout.Alloc("@b", 4)
	prog := &vx86.Program{Funcs: []*vx86.Function{res.Fn}}
	xi := vx86.NewInterp(prog, layout, mem.NewConcrete(layout))
	_, err := xi.Call("narrow_foo")
	ub, ok := err.(*vx86.UBError)
	if !ok || ub.Kind != "oob" {
		t.Fatalf("buggy translation error = %v, want oob", err)
	}
	_ = m
}

func TestCompileCalls(t *testing.T) {
	_, res := compile(t, paperprogs.CallExample, "call_example", Options{})
	var call *vx86.Instr
	callIdx := -1
	for i, in := range res.Fn.Entry().Instrs {
		if in.Op == vx86.OpCall {
			call = in
			callIdx = i
		}
	}
	if call == nil || call.Callee != "callee" {
		t.Fatalf("call missing: %v", call)
	}
	// The two preceding instructions set up edi and esi.
	argSetup := res.Fn.Entry().Instrs[callIdx-2 : callIdx]
	for i, in := range argSetup {
		if in.Op != vx86.OpCopy || in.Dst.Virtual || in.Dst.Name != vx86.ArgRegs[i] {
			t.Errorf("arg setup %d = %v", i, in)
		}
	}
	// The result is copied out of eax right after.
	after := res.Fn.Entry().Instrs[callIdx+1]
	if after.Op != vx86.OpCopy || !after.Dst.Virtual ||
		after.Srcs[0].Reg.Name != "rax" {
		t.Errorf("result copy = %v", after)
	}
}

func TestHintsRoundTrip(t *testing.T) {
	_, res := compile(t, paperprogs.ArithmSeqSum, "arithm_seq_sum", Options{})
	text := res.Hints.String()
	parsed, err := ParseHints(text)
	if err != nil {
		t.Fatalf("ParseHints: %v\n%s", err, text)
	}
	if len(parsed.RegMap) != len(res.Hints.RegMap) ||
		len(parsed.BlockMap) != len(res.Hints.BlockMap) ||
		len(parsed.ConstMap) != len(res.Hints.ConstMap) {
		t.Fatalf("round trip lost entries:\n%s", text)
	}
	for k, v := range res.Hints.RegMap {
		if parsed.RegMap[k] != v {
			t.Errorf("RegMap[%s] = %s, want %s", k, parsed.RegMap[k], v)
		}
	}
	if !strings.Contains(text, "block entry .LBB0") {
		t.Errorf("hints text missing block map:\n%s", text)
	}
}

func TestCompiledOutputParses(t *testing.T) {
	// The textual form of compiled output must round-trip through the
	// vx86 parser (the cmd pipeline depends on it).
	for _, tc := range []struct{ src, fn string }{
		{paperprogs.ArithmSeqSum, "arithm_seq_sum"},
		{paperprogs.WAWStores, "waw_foo"},
		{paperprogs.LoadNarrow, "narrow_foo"},
		{paperprogs.CallExample, "call_example"},
		{paperprogs.AllocaExample, "alloca_example"},
	} {
		_, res := compile(t, tc.src, tc.fn, Options{})
		text := (&vx86.Program{Funcs: []*vx86.Function{res.Fn}}).String()
		if _, err := vx86.Parse(text); err != nil {
			t.Errorf("%s: compiled output does not parse: %v\n%s", tc.fn, err, text)
		}
	}
}
