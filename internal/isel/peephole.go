package isel

import (
	"repro/internal/llvmir"
	"repro/internal/vx86"
)

// foldCast evaluates a cast instruction over a constant operand.
func foldCast(in *llvmir.Instr, v uint64, srcBits int) uint64 {
	maskTo := func(val uint64, bits int) uint64 {
		if bits >= 64 {
			return val
		}
		return val & ((1 << bits) - 1)
	}
	switch in.Op {
	case llvmir.OpSExt:
		if srcBits < 64 && v&(1<<(srcBits-1)) != 0 {
			v |= ^uint64(0) << srcBits
		}
	}
	dstBits := 64
	if it, ok := in.Ty.(llvmir.IntType); ok {
		dstBits = it.Bits
	}
	return maskTo(v, dstBits)
}

// storeInfo summarizes a constant store to a symbol-addressed location —
// the shape the store-merging peephole operates on (Figure 8's stores).
type storeInfo struct {
	idx  int
	sym  string
	off  int64
	size int64
	val  uint64
}

func (s storeInfo) overlaps(t storeInfo) bool {
	return s.sym == t.sym && s.off < t.off+t.size && t.off < s.off+s.size
}

// contiguousWith reports whether s followed by t (or t followed by s)
// forms one contiguous range, and returns the combined store.
func combine(a, b storeInfo) (storeInfo, bool) {
	if a.sym != b.sym || a.size+b.size > 8 {
		return storeInfo{}, false
	}
	lo, hi := a, b
	if b.off < a.off {
		lo, hi = b, a
	}
	if lo.off+lo.size != hi.off {
		return storeInfo{}, false
	}
	sz := lo.size + hi.size
	if sz != 2 && sz != 4 && sz != 8 {
		return storeInfo{}, false
	}
	val := lo.val&((1<<(8*lo.size))-1) | hi.val<<(8*lo.size)
	return storeInfo{sym: lo.sym, off: lo.off, size: sz, val: val}, true
}

// mergeStores merges pairs of adjacent constant stores within a block into
// wider stores (the SelectionDAG store-merging optimization the WAW bug of
// Figures 8/9 lived in).
//
// Correct variant (buggy=false, Figure 9c): the later store is hoisted up
// to the earlier store's position; legal only when no intervening store
// overlaps the *later* store's range (hoisting it cannot then change any
// byte's final writer), and when neither store overlaps the other.
//
// Buggy variant (buggy=true, Figure 9b): the merge is placed at the later
// store's position, sinking the earlier store past intervening stores with
// no overlap check — reversing write-after-write dependencies exactly as
// the reintroduced LLVM bug did.
func mergeStores(b *vx86.Block, buggy bool) {
	for {
		if !mergeOnce(b, buggy) {
			return
		}
	}
}

func mergeOnce(b *vx86.Block, buggy bool) bool {
	var stores []storeInfo
	for i, in := range b.Instrs {
		if in.Op != vx86.OpStore || in.Addr == nil || in.Addr.Sym == "" {
			continue
		}
		if len(in.Srcs) != 1 || in.Srcs[0].Kind != vx86.OImm {
			continue
		}
		stores = append(stores, storeInfo{
			idx:  i,
			sym:  in.Addr.Sym,
			off:  in.Addr.Off,
			size: int64(in.Size),
			val:  uint64(in.Srcs[0].Imm),
		})
	}
	for i := 0; i < len(stores); i++ {
		for j := i + 1; j < len(stores); j++ {
			a, c := stores[i], stores[j]
			merged, ok := combine(a, c)
			if !ok {
				continue
			}
			if !buggy {
				// Hoisting c up to a's position: every intervening store
				// must be disjoint from c's range.
				legal := true
				for _, k := range stores[i+1 : j] {
					if k.overlaps(c) {
						legal = false
						break
					}
				}
				// Also require the pair itself to be disjoint (combine
				// already guarantees it, but keep the check explicit).
				if a.overlaps(c) {
					legal = false
				}
				if !legal {
					continue
				}
				replaceStore(b, a.idx, merged)
				removeInstr(b, c.idx)
				return true
			}
			// Buggy: merge at the LATER position, no overlap check against
			// intervening stores — sinks `a` past them.
			replaceStore(b, c.idx, merged)
			removeInstr(b, a.idx)
			return true
		}
	}
	return false
}

func replaceStore(b *vx86.Block, idx int, s storeInfo) {
	b.Instrs[idx] = &vx86.Instr{
		Op:   vx86.OpStore,
		Addr: &vx86.Addr{Sym: s.sym, Off: s.off},
		Size: int(s.size),
		Srcs: []vx86.Operand{vx86.ImmOp(int64(s.val))},
	}
}

func removeInstr(b *vx86.Block, idx int) {
	b.Instrs = append(b.Instrs[:idx], b.Instrs[idx+1:]...)
}
