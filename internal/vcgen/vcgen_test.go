package vcgen

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/paperprogs"
	"repro/internal/vx86"
)

func generate(t *testing.T, src, fnName string, opts Options) ([]*core.SyncPoint, *isel.Result) {
	t.Helper()
	mod, err := llvmir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fn := mod.Func(fnName)
	res, err := isel.Compile(mod, fn, isel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	points, err := Generate(fn, res.Fn, res.Hints, opts)
	if err != nil {
		t.Fatal(err)
	}
	return points, res
}

func findPoint(points []*core.SyncPoint, id string) *core.SyncPoint {
	for _, p := range points {
		if p.ID == id {
			return p
		}
	}
	return nil
}

func TestGenerateFigure3Points(t *testing.T) {
	points, _ := generate(t, paperprogs.ArithmSeqSum, "arithm_seq_sum", Options{})
	if len(points) != 4 {
		t.Fatalf("%d points, want 4 (Figure 3)", len(points))
	}

	p0 := findPoint(points, "p0")
	if p0 == nil || p0.LocLeft != "entry" || !p0.MemEqual || p0.Exiting {
		t.Fatalf("p0 = %+v", p0)
	}
	// Calling-convention constraints of Figure 3's p0.
	wantP0 := map[string]string{"%a0": "edi", "%d": "esi", "%n": "edx"}
	for _, c := range p0.Constraints {
		if wantP0[c.Left] != c.Right {
			t.Errorf("p0 constraint %s = %s, want %s", c.Left, c.Right, wantP0[c.Left])
		}
		delete(wantP0, c.Left)
	}
	if len(wantP0) != 0 {
		t.Errorf("p0 missing constraints: %v", wantP0)
	}

	pexit := findPoint(points, "pexit")
	if pexit == nil || !pexit.Exiting || !pexit.MemEqual {
		t.Fatalf("pexit = %+v", pexit)
	}
	if len(pexit.Constraints) != 1 || pexit.Constraints[0].Left != "ret" ||
		pexit.Constraints[0].Right != "eax" {
		t.Errorf("pexit constraints = %+v (Figure 3's p3: %%s.0 = eax)", pexit.Constraints)
	}

	// Loop-header points: one per predecessor, as the paper does "to
	// expedite the symbolic execution of the phi instructions".
	fromEntry := findPoint(points, "p_for.cond_from_entry")
	fromInc := findPoint(points, "p_for.cond_from_for.inc")
	if fromEntry == nil || fromInc == nil {
		t.Fatalf("loop points missing: %v", points)
	}
	// The entry-edge point must pin the materialized constant 1 (paper's
	// "1 = %vr9_32" in Figure 3 p1).
	foundConst := false
	for _, c := range fromEntry.Constraints {
		if c.Left == "1" {
			foundConst = true
		}
	}
	if !foundConst {
		t.Errorf("entry-edge loop point lacks the constant constraint: %+v", fromEntry.Constraints)
	}
	// The latch-edge point must relate the loop-carried values.
	var lhs []string
	for _, c := range fromInc.Constraints {
		lhs = append(lhs, c.Left)
	}
	joined := strings.Join(lhs, " ")
	for _, want := range []string{"%add", "%add1", "%inc", "%d", "%n"} {
		if !strings.Contains(joined, want) {
			t.Errorf("latch-edge point missing %s: %v", want, lhs)
		}
	}
}

func TestGenerateCallPoints(t *testing.T) {
	points, _ := generate(t, paperprogs.CallExample, "call_example", Options{})
	before := findPoint(points, "p_call0_before")
	if before == nil || !before.Exiting || !before.MemEqual {
		t.Fatalf("before = %+v", before)
	}
	wantArgs := map[string]string{"arg0": "edi", "arg1": "esi"}
	for _, c := range before.Constraints {
		if wantArgs[c.Left] != c.Right {
			t.Errorf("before constraint %s = %s", c.Left, c.Right)
		}
	}
	after := findPoint(points, "p_call0_after")
	if after == nil || after.Exiting {
		t.Fatalf("after = %+v", after)
	}
	var hasResult, hasLiveY bool
	for _, c := range after.Constraints {
		if c.Left == "%r" && c.Right == "eax" {
			hasResult = true
		}
		if c.Left == "%y" {
			hasLiveY = true
		}
	}
	if !hasResult {
		t.Errorf("after-call point lacks the result constraint: %+v", after.Constraints)
	}
	if !hasLiveY {
		t.Errorf("after-call point lacks the live register %%y: %+v", after.Constraints)
	}
}

func TestGenerateVoidFunction(t *testing.T) {
	points, _ := generate(t, paperprogs.WAWStores, "waw_foo", Options{})
	pexit := findPoint(points, "pexit")
	if pexit == nil || len(pexit.Constraints) != 0 {
		t.Fatalf("void exit point = %+v", pexit)
	}
	if !pexit.MemEqual {
		t.Errorf("void exit point must still require memory equality")
	}
}

func TestCoarseLivenessAddsConstraints(t *testing.T) {
	fine, _ := generate(t, paperprogs.ArithmSeqSum, "arithm_seq_sum", Options{})
	coarse, _ := generate(t, paperprogs.ArithmSeqSum, "arithm_seq_sum", Options{CoarseLiveness: true})
	nFine := len(findPoint(fine, "p_for.cond_from_entry").Constraints)
	nCoarse := len(findPoint(coarse, "p_for.cond_from_entry").Constraints)
	if nCoarse < nFine {
		t.Errorf("coarse liveness produced fewer constraints (%d < %d)", nCoarse, nFine)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := generate(t, paperprogs.ArithmSeqSum, "arithm_seq_sum", Options{})
	b, _ := generate(t, paperprogs.ArithmSeqSum, "arithm_seq_sum", Options{})
	var sa, sb strings.Builder
	core.WriteSyncPoints(&sa, a)
	core.WriteSyncPoints(&sb, b)
	if sa.String() != sb.String() {
		t.Fatalf("generation not deterministic:\n%s\nvs\n%s", sa.String(), sb.String())
	}
}

func TestGenerateRejectsMismatchedCallSites(t *testing.T) {
	mod, err := llvmir.Parse(paperprogs.CallExample)
	if err != nil {
		t.Fatal(err)
	}
	fn := mod.Func("call_example")
	res, err := isel.Compile(mod, fn, isel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the translation: drop the call on the x86 side.
	for _, b := range res.Fn.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op != vx86.OpCall {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
	}
	if _, err := Generate(fn, res.Fn, res.Hints, Options{}); err == nil {
		t.Fatalf("mismatched call sites not rejected")
	}
}
