// Package vcgen is the verification-condition generator of the TV
// prototype (paper §4.5): from the input LLVM function, the output Virtual
// x86 function, and the compiler hints, it produces the synchronization
// points KEQ checks. The strategy is exactly the paper's:
//
//   - function entry and exit, with constraints from the calling
//     convention;
//   - loop entries, one point per predecessor edge, relating the live
//     registers of both sides (live-variable analysis plus the compiler's
//     register-correspondence hint);
//   - call sites, an exiting point before each call (argument registers)
//     and a start point after it (result register plus live registers);
//   - every point constrains the two memories to be equal (the common
//     memory model of §4.4 reduces the acceptability relation's memory
//     clause to plain equality).
//
// The generator is transformation-specific and untrusted: if it emits an
// inadequate set of points (e.g. because liveness is too coarse — the
// cause of the paper's 16 "Other" failures), KEQ fails the validation, it
// never wrongly accepts.
package vcgen

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/telemetry"
	"repro/internal/vx86"
)

// Options tune generation.
type Options struct {
	// CoarseLiveness deliberately over-approximates x86 liveness (every
	// virtual register defined so far is considered live), recreating the
	// inadequate-synchronization-point failure mode of the paper's
	// evaluation ("Other" row of Figure 6).
	CoarseLiveness bool
	// Trace, when non-nil, receives spans for the liveness and
	// point-construction sub-phases, nested under TraceParent.
	Trace       *telemetry.Tracer
	TraceParent telemetry.SpanID
}

// Generate builds the synchronization relation for one ISel translation
// instance.
func Generate(fn *llvmir.Function, xfn *vx86.Function, hints *isel.Hints, opts Options) ([]*core.SyncPoint, error) {
	g := &gen{fn: fn, xfn: xfn, hints: hints, opts: opts}
	return g.run()
}

type gen struct {
	fn    *llvmir.Function
	xfn   *vx86.Function
	hints *isel.Hints
	opts  Options

	invRegMap map[string]string // vx86 observable -> LLVM reg name
	regTys    map[string]llvmir.Type
	xWidths   map[string]uint8

	llvmLive map[string]map[string]bool
	x86Live  map[string]map[string]bool
}

func (g *gen) run() ([]*core.SyncPoint, error) {
	g.invRegMap = make(map[string]string, len(g.hints.RegMap))
	for l, x := range g.hints.RegMap {
		g.invRegMap[x] = l
	}
	g.regTys = llvmir.RegTypes(g.fn)
	g.xWidths = vx86.RegWidths(g.xfn)
	liveSpan := g.opts.Trace.Start(g.opts.TraceParent, "vcgen.liveness")
	g.llvmLive = cfg.Liveness(llvmir.FuncGraph{F: g.fn})
	g.x86Live = cfg.Liveness(vx86.FuncGraph{F: g.xfn})
	liveSpan.End()

	ptSpan := g.opts.Trace.Start(g.opts.TraceParent, "vcgen.points")
	defer ptSpan.End()
	var points []*core.SyncPoint
	entry, err := g.entryPoint()
	if err != nil {
		return nil, err
	}
	points = append(points, entry)

	exit, err := g.exitPoint()
	if err != nil {
		return nil, err
	}
	points = append(points, exit)

	loopPts, err := g.loopPoints()
	if err != nil {
		return nil, err
	}
	points = append(points, loopPts...)

	callPts, err := g.callPoints()
	if err != nil {
		return nil, err
	}
	points = append(points, callPts...)

	core.SortPoints(points)
	return points, nil
}

// argRegName returns the assembly name of the i-th argument register at
// the width of the given LLVM type (i1 arguments use the 8-bit view).
func argRegName(i int, ty llvmir.Type) (string, error) {
	if i >= len(vx86.ArgRegs) {
		return "", fmt.Errorf("vcgen: more than %d arguments", len(vx86.ArgRegs))
	}
	bits, err := llvmir.BitsOf(ty)
	if err != nil {
		return "", err
	}
	w := uint8(bits)
	if w == 1 {
		w = 8
	}
	return vx86.PhysName(vx86.ArgRegs[i], w), nil
}

func (g *gen) entryPoint() (*core.SyncPoint, error) {
	p := &core.SyncPoint{ID: "p0", LocLeft: "entry", LocRight: "entry", MemEqual: true}
	for i, prm := range g.fn.Params {
		reg, err := argRegName(i, prm.Ty)
		if err != nil {
			return nil, err
		}
		p.Constraints = append(p.Constraints, core.Constraint{Left: "%" + prm.Name, Right: reg})
	}
	return p, nil
}

func (g *gen) exitPoint() (*core.SyncPoint, error) {
	p := &core.SyncPoint{ID: "pexit", LocLeft: "exit", LocRight: "exit",
		MemEqual: true, Exiting: true}
	if bits, err := llvmir.BitsOf(g.fn.Ret); err == nil {
		w := uint8(bits)
		if w == 1 {
			w = 8
		}
		p.Constraints = append(p.Constraints, core.Constraint{
			Left: "ret", Right: vx86.PhysName("rax", w)})
	}
	return p, nil
}

// regConstraints builds the constraint list relating the given live LLVM
// registers and live x86 virtual registers, using the hint maps: the union
// of the hint image of the LLVM live set and the x86 live set, with
// compiler-materialized constants pinned by constant constraints.
func (g *gen) regConstraints(llvmRegs, x86Regs map[string]bool) []core.Constraint {
	covered := make(map[string]bool) // x86 observables already constrained
	var cons []core.Constraint
	for _, r := range cfg.SortedKeys(llvmRegs) {
		x, ok := g.hints.RegMap[r]
		if !ok {
			continue // register not materialized on the x86 side
		}
		cons = append(cons, core.Constraint{Left: "%" + r, Right: x})
		covered[x] = true
	}
	for _, v := range cfg.SortedKeys(x86Regs) {
		obs := fmt.Sprintf("%%%s_%d", v, g.xWidths[v])
		if covered[obs] {
			continue
		}
		if l, ok := g.invRegMap[obs]; ok {
			cons = append(cons, core.Constraint{Left: "%" + l, Right: obs})
			covered[obs] = true
			continue
		}
		if c, ok := g.hints.ConstMap[obs]; ok {
			cons = append(cons, core.Constraint{Left: fmt.Sprintf("%d", c), Right: obs})
			covered[obs] = true
			continue
		}
		// No LLVM counterpart and not a known constant: the point is
		// inadequate for this register; KEQ will fail if it matters
		// (paper §5.1, "Inadequate synchronization points").
	}
	return cons
}

func (g *gen) loopPoints() ([]*core.SyncPoint, error) {
	lg := llvmir.FuncGraph{F: g.fn}
	xg := vx86.FuncGraph{F: g.xfn}
	preds := cfg.Preds(lg)
	var points []*core.SyncPoint
	for _, loop := range cfg.NaturalLoops(lg) {
		h := loop.Header
		xh, ok := g.hints.BlockMap[h]
		if !ok {
			return nil, fmt.Errorf("vcgen: no block hint for loop header %%%s", h)
		}
		for _, p := range preds[h] {
			xp, ok := g.hints.BlockMap[p]
			if !ok {
				return nil, fmt.Errorf("vcgen: no block hint for predecessor %%%s", p)
			}
			llvmRegs := union(g.llvmLive[h], lg.EdgeUse(p, h))
			var x86Regs map[string]bool
			if g.opts.CoarseLiveness {
				x86Regs = g.allX86Regs()
			} else {
				x86Regs = union(g.x86Live[xh], xg.EdgeUse(xp, xh))
			}
			points = append(points, &core.SyncPoint{
				ID:          fmt.Sprintf("p_%s_from_%s", h, p),
				LocLeft:     core.Location(fmt.Sprintf("block:%s:from:%s", h, p)),
				LocRight:    core.Location(fmt.Sprintf("block:%s:from:%s", xh, xp)),
				Constraints: g.regConstraints(llvmRegs, x86Regs),
				MemEqual:    true,
			})
		}
	}
	return points, nil
}

// allX86Regs returns every virtual register of the output function — the
// deliberately coarse liveness of Options.CoarseLiveness.
func (g *gen) allX86Regs() map[string]bool {
	out := make(map[string]bool, len(g.xWidths))
	for v := range g.xWidths {
		out[v] = true
	}
	return out
}

func (g *gen) callPoints() ([]*core.SyncPoint, error) {
	lSites := llvmir.CallSites(g.fn)
	xSites := vx86.CallSites(g.xfn)
	if len(lSites) != len(xSites) {
		return nil, fmt.Errorf("vcgen: call-site count mismatch: %d LLVM vs %d x86",
			len(lSites), len(xSites))
	}
	var points []*core.SyncPoint
	for k, site := range lSites {
		if xSites[k].Callee != site.Callee {
			return nil, fmt.Errorf("vcgen: call %d targets @%s on LLVM side, @%s on x86 side",
				k, site.Callee, xSites[k].Callee)
		}
		loc := core.Location(fmt.Sprintf("call:%s:%d:before", site.Callee, k))
		before := &core.SyncPoint{
			ID: fmt.Sprintf("p_call%d_before", k), LocLeft: loc, LocRight: loc,
			MemEqual: true, Exiting: true,
		}
		for i, a := range site.Instr.Args {
			reg, err := argRegName(i, a.Ty)
			if err != nil {
				return nil, err
			}
			before.Constraints = append(before.Constraints, core.Constraint{
				Left: fmt.Sprintf("arg%d", i), Right: reg})
		}
		points = append(points, before)

		locA := core.Location(fmt.Sprintf("call:%s:%d:after", site.Callee, k))
		after := &core.SyncPoint{
			ID: fmt.Sprintf("p_call%d_after", k), LocLeft: locA, LocRight: locA,
			MemEqual: true,
		}
		if site.Instr.Name != "" {
			bits, err := llvmir.BitsOf(site.Instr.Ty)
			if err != nil {
				return nil, err
			}
			w := uint8(bits)
			if w == 1 {
				w = 8
			}
			after.Constraints = append(after.Constraints, core.Constraint{
				Left: "%" + site.Instr.Name, Right: vx86.PhysName("rax", w)})
		}
		llvmRegs := g.llvmLiveAfter(site)
		// Exclude the call result itself: it is constrained via rax above
		// and not yet copied into its vreg on the x86 side.
		delete(llvmRegs, site.Instr.Name)
		var x86Regs map[string]bool
		if g.opts.CoarseLiveness {
			x86Regs = g.allX86Regs()
		} else {
			x86Regs = g.x86LiveAfter(xSites[k])
		}
		if r, ok := g.hints.RegMap[site.Instr.Name]; ok {
			delete(x86Regs, stripObs(r))
		}
		after.Constraints = append(after.Constraints, g.regConstraints(llvmRegs, x86Regs)...)
		points = append(points, after)
	}
	return points, nil
}

// stripObs turns "%vr3_32" into "vr3".
func stripObs(obs string) string {
	s := obs
	if len(s) > 0 && s[0] == '%' {
		s = s[1:]
	}
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '_' {
			return s[:i]
		}
	}
	return s
}

// llvmLiveAfter computes the LLVM registers live immediately after a call
// instruction (position-level backward liveness within the block suffix).
func (g *gen) llvmLiveAfter(site llvmir.CallSite) map[string]bool {
	lg := llvmir.FuncGraph{F: g.fn}
	b := g.fn.BlockByName(site.Block)
	live := cfg.LiveOut(lg, g.llvmLive, site.Block)
	for i := len(b.Instrs) - 1; i > site.Index; i-- {
		in := b.Instrs[i]
		if in.Name != "" {
			delete(live, in.Name)
		}
		for _, v := range in.Args {
			if v.Kind == llvmir.VReg {
				live[v.Name] = true
			}
		}
	}
	return live
}

// x86LiveAfter computes the x86 virtual registers live immediately after a
// call instruction.
func (g *gen) x86LiveAfter(site vx86.CallSite) map[string]bool {
	xg := vx86.FuncGraph{F: g.xfn}
	b := g.xfn.BlockByName(site.Block)
	live := cfg.LiveOut(xg, g.x86Live, site.Block)
	for i := len(b.Instrs) - 1; i > site.Index; i-- {
		in := b.Instrs[i]
		if in.HasDst && in.Dst.Virtual {
			delete(live, in.Dst.Name)
		}
		for _, o := range in.Srcs {
			if o.Kind == vx86.OReg && o.Reg.Virtual {
				live[o.Reg.Name] = true
			}
		}
		if in.Addr != nil && in.Addr.Base != nil && in.Addr.Base.Virtual {
			live[in.Addr.Base.Name] = true
		}
	}
	return live
}

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// Describe renders a human-readable summary of the points (used by the
// cmd tools for -v output).
func Describe(points []*core.SyncPoint) string {
	ids := make([]string, len(points))
	for i, p := range points {
		ids[i] = p.ID
	}
	sort.Strings(ids)
	return fmt.Sprintf("%d synchronization points: %v", len(points), ids)
}
