// Bugdetect: reintroduce the two real LLVM instruction-selection bugs of
// the paper's §5.2 and show that the TV system rejects the buggy
// translations while accepting the correct ones.
//
//   - Figure 8/9: a write-after-write dependency is reversed when the
//     store-merging peephole sinks an earlier store past an overlapping one
//     (LLVM PR25154).
//   - Figure 10/11: load narrowing widens a 2-byte access into a 4-byte
//     access that reads past the end of the object (LLVM PR4737; scaled
//     from i96 to i48 — see DESIGN.md).
//
// Run with: go run ./examples/bugdetect
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/paperprogs"
	"repro/internal/tv"
	"repro/internal/vx86"
)

func main() {
	budget := tv.Budget{Timeout: time.Minute}

	fmt.Println("=== Figure 8: the LLVM input with a WAW dependency ===")
	fmt.Print(paperprogs.WAWStores)
	showCompiled("correct merge (Figure 9c)", paperprogs.WAWStores, "waw_foo",
		isel.Options{MergeStores: true})
	showCompiled("buggy merge (Figure 9b)", paperprogs.WAWStores, "waw_foo",
		isel.Options{BugWAWStoreMerge: true})

	fmt.Println("=== Figure 10: the load-narrowing input (scaled to i48) ===")
	fmt.Printf("%s", paperprogs.LoadNarrow)
	showCompiled("correct narrowing (Figure 11a)", paperprogs.LoadNarrow, "narrow_foo",
		isel.Options{})
	showCompiled("buggy widening (Figure 11b)", paperprogs.LoadNarrow, "narrow_foo",
		isel.Options{BugLoadNarrow: true})

	experiments := []harness.BugExperiment{
		{
			Name:        "WAW store merge (Fig. 8/9, PR25154)",
			Program:     paperprogs.WAWStores,
			Fn:          "waw_foo",
			GoodOptions: isel.Options{MergeStores: true},
			BadOptions:  isel.Options{BugWAWStoreMerge: true},
		},
		{
			Name:        "Load narrowing (Fig. 10/11, PR4737)",
			Program:     paperprogs.LoadNarrow,
			Fn:          "narrow_foo",
			GoodOptions: isel.Options{},
			BadOptions:  isel.Options{BugLoadNarrow: true},
		},
	}
	var results []*harness.BugResult
	allGood := true
	for _, e := range experiments {
		r, err := harness.RunBug(e, budget)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
		allGood = allGood && r.BugCaught && r.GoodPassed
		if r.BuggyReport != nil {
			fmt.Printf("--- KEQ failures for the buggy %s ---\n", e.Name)
			for _, f := range r.BuggyReport.Failures {
				fmt.Printf("  %s\n", f)
			}
			fmt.Println()
		}
	}
	harness.RenderBugTable(os.Stdout, results)
	if !allGood {
		os.Exit(1)
	}
}

func showCompiled(title, src, fn string, opts isel.Options) {
	mod, err := llvmir.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := isel.Compile(mod, mod.Func(fn), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s ---\n", title)
	fmt.Println(&vx86.Program{Funcs: []*vx86.Function{res.Fn}})
}
