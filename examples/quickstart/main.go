// Quickstart: validate the paper's running example (Figures 1–3).
//
// The program compiles the arithmetic-sequence-sum function from LLVM IR
// to Virtual x86 with the instruction-selection pass, generates the
// synchronization points of Figure 3, and asks KEQ to prove the
// translation correct by checking that the points form a cut-bisimulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/paperprogs"
	"repro/internal/tv"
	"repro/internal/vcgen"
	"repro/internal/vx86"
)

func main() {
	mod, err := llvmir.Parse(paperprogs.ArithmSeqSum)
	if err != nil {
		log.Fatal(err)
	}
	if err := llvmir.Verify(mod); err != nil {
		log.Fatal(err)
	}
	fn := mod.Func("arithm_seq_sum")

	fmt.Println("=== Input: LLVM IR (Figure 2a) ===")
	fmt.Println(mod)

	res, err := isel.Compile(mod, fn, isel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Output: Virtual x86 after instruction selection (Figure 2b) ===")
	fmt.Println(&vx86.Program{Funcs: []*vx86.Function{res.Fn}})

	points, err := vcgen.Generate(fn, res.Fn, res.Hints, vcgen.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Synchronization points (Figure 3) ===")
	if err := core.WriteSyncPoints(os.Stdout, points); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== KEQ verdict ===")
	out := tv.Validate(mod, fn.Name, isel.Options{}, vcgen.Options{}, core.Options{},
		tv.Budget{Timeout: time.Minute})
	fmt.Printf("%s in %v (%d sync points, %d SMT queries, %d by the fast path)\n",
		out.Class, out.Duration.Round(time.Millisecond), out.Points,
		out.SMTStats.Queries, out.SMTStats.FastQueries)
	if out.Class != tv.ClassSucceeded {
		os.Exit(1)
	}

	// Sanity: both programs agree concretely too.
	li := llvmir.NewInterp(mod)
	want, err := li.Call("arithm_seq_sum", []uint64{2, 3, 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narithm_seq_sum(2,3,4) = %d  (2 + 5 + 8 + 11)\n", want)
}
