// Regalloc: validate a register-allocation pass with the same checker —
// the paper's "ongoing work" (§1). Unlike the ISel instance, both sides of
// this equivalence are the SAME language (Virtual x86): the left program
// still uses virtual registers and PHIs, the right program has been
// rewritten by a spill-everything allocator (the shape of LLVM's -O0
// RegAllocFast) with frame slots and eliminated PHIs.
//
// Run with: go run ./examples/regalloc
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/paperprogs"
	"repro/internal/regalloc"
	"repro/internal/smt"
	"repro/internal/vx86"
)

func main() {
	mod, err := llvmir.Parse(paperprogs.ArithmSeqSum)
	if err != nil {
		log.Fatal(err)
	}
	res, err := isel.Compile(mod, mod.Func("arithm_seq_sum"), isel.Options{})
	if err != nil {
		log.Fatal(err)
	}
	before := res.Fn

	fmt.Println("=== Before allocation (virtual registers + PHIs) ===")
	fmt.Println(&vx86.Program{Funcs: []*vx86.Function{before}})

	alloc, err := regalloc.Allocate(before, regalloc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== After allocation (frame slots, scratch registers, no PHIs) ===")
	fmt.Println(&vx86.Program{Funcs: []*vx86.Function{alloc.Fn}})

	points, err := regalloc.SyncPoints(before, alloc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Synchronization points (vregs against their slots) ===")
	if err := core.WriteSyncPoints(os.Stdout, points); err != nil {
		log.Fatal(err)
	}

	verdict := check(mod, before, alloc.Fn, points)
	fmt.Printf("\ncorrect allocator: %s\n", verdict)

	buggy, err := regalloc.Allocate(before, regalloc.Options{BugClobberScratch: true})
	if err != nil {
		log.Fatal(err)
	}
	verdict = check(mod, before, buggy.Fn, points)
	fmt.Printf("allocator with scratch-clobber bug: %s\n", verdict)
	if verdict != core.NotValidated {
		os.Exit(1)
	}
}

func check(mod *llvmir.Module, before, after *vx86.Function, points []*core.SyncPoint) core.Verdict {
	ctx := smt.NewContext()
	solver := smt.NewSolver(ctx)
	layout := llvmir.BuildLayout(mod, mod.Func(before.Name))
	ck := core.NewChecker(solver,
		vx86.NewSem(ctx, before, layout),
		vx86.NewSem(ctx, after, layout),
		core.Options{})
	rep, err := ck.Run(points)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Verdict == core.NotValidated {
		for _, f := range rep.Failures {
			fmt.Printf("  failure: %s\n", f)
		}
	}
	return rep.Verdict
}
