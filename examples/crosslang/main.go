// Crosslang: the language-parametricity demonstration. The exact same
// checker (internal/core) that validates LLVM→x86 instruction selection
// validates a compiler between two completely different languages — the
// IMP while-language and a stack machine — with zero changes: only the two
// Semantics implementations differ.
//
// Run with: go run ./examples/crosslang
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/imp"
	"repro/internal/smt"
	"repro/internal/stack"
)

const gcd = `
input a, b
a := (a | 1)
b := (b | 1)
while ((a == b) == 0) {
  if (a < b) {
    b := (b - a)
  } else {
    a := (a - b)
  }
}
return a
`

func main() {
	prog, err := imp.Parse(gcd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== IMP source (gcd by repeated subtraction) ===")
	fmt.Print(gcd)

	compiled := stack.Compile(prog, stack.Options{})
	fmt.Println("\n=== Compiled stack-machine program ===")
	fmt.Println(compiled)

	points := stack.SyncPoints(prog)
	fmt.Println("=== Synchronization points ===")
	if err := core.WriteSyncPoints(os.Stdout, points); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== KEQ over the IMP/stack pair ===")
	verdict := check(prog, compiled, points)
	fmt.Printf("correct compiler: %s\n", verdict)

	buggy := stack.Compile(prog, stack.Options{BugSwapSub: true})
	verdict = check(prog, buggy, points)
	fmt.Printf("compiler with swapped subtraction: %s\n", verdict)
	if verdict != core.NotValidated {
		os.Exit(1)
	}

	a, _ := imp.Eval(prog, map[string]uint32{"a": 12, "b": 18})
	s, _ := stack.Eval(compiled, map[string]uint32{"a": 12, "b": 18})
	fmt.Printf("\nconcrete check: imp gcd(13,19)=%d, stack gcd(13,19)=%d\n", a, s)
}

func check(prog *imp.Program, compiled *stack.Program, points []*core.SyncPoint) core.Verdict {
	ctx := smt.NewContext()
	solver := smt.NewSolver(ctx)
	ck := core.NewChecker(solver, imp.NewSem(ctx, prog), stack.NewSem(ctx, compiled), core.Options{})
	rep, err := ck.Run(points)
	if err != nil {
		log.Fatal(err)
	}
	if rep.Verdict == core.NotValidated {
		for _, f := range rep.Failures {
			fmt.Printf("  failure: %s\n", f)
		}
	}
	return rep.Verdict
}
